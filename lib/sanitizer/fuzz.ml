type case = {
  seed : int;
  workload : string;
  scale : float;
  workers : int;
  mechanism : Hbc_core.Rt_config.mechanism;
  chunk : Hbc_core.Compiled.chunk_mode;
  policy : Hbc_core.Rt_config.promotion_policy;
  leftover : Hbc_core.Rt_config.leftover_mode;
  chunk_transferring : bool;
  ac_target_polls : int;
  ac_window : int;
  plan : Sim.Fault_plan.t;
  bug : Hbc_core.Executor.seeded_bug option;
  native_beat : int option;
      (* Some n: run on the domains backend with a deterministic beat
         every n polls; None: the virtual-time simulator *)
}

type failure =
  | Violations of Checker.violation list
  | Mismatch of { expected : float; got : float }
  | Dnf
  | Crash of string

let failure_kind = function
  | Violations (v :: _) -> "violation:" ^ Checker.invariant_name v.Checker.invariant
  | Violations [] -> "violation"
  | Mismatch _ -> "mismatch"
  | Dnf -> "dnf"
  | Crash _ -> "crash"

let failure_describe = function
  | Violations vs ->
      let v = List.hd vs in
      Printf.sprintf "%d violation(s); first [%s]: %s" (List.length vs)
        (Checker.invariant_name v.Checker.invariant) v.Checker.message
  | Mismatch { expected; got } ->
      Printf.sprintf "fingerprint mismatch: sequential %.17g, parallel %.17g" expected got
  | Dnf -> "did not finish under the virtual-time cap"
  | Crash msg -> "crash: " ^ msg

type outcome = {
  case : case;
  failure : failure option;
  sanitizer_summary : string;
  makespan : int;
}

(* ------------------------------------------------------------------ *)
(* String codecs for the knob enums.                                   *)
(* ------------------------------------------------------------------ *)

let mechanism_to_string = function
  | Hbc_core.Rt_config.Software_polling -> "poll"
  | Hbc_core.Rt_config.Interrupt_ping_thread -> "ping"
  | Hbc_core.Rt_config.Interrupt_kernel_module -> "km"

let mechanism_of_string = function
  | "poll" -> Ok Hbc_core.Rt_config.Software_polling
  | "ping" -> Ok Hbc_core.Rt_config.Interrupt_ping_thread
  | "km" -> Ok Hbc_core.Rt_config.Interrupt_kernel_module
  | s -> Error ("unknown mechanism: " ^ s)

let chunk_to_string = function
  | Hbc_core.Compiled.Adaptive -> "adaptive"
  | Hbc_core.Compiled.No_chunking -> "none"
  | Hbc_core.Compiled.Static n -> string_of_int n

let chunk_of_string s =
  match s with
  | "adaptive" -> Ok Hbc_core.Compiled.Adaptive
  | "none" -> Ok Hbc_core.Compiled.No_chunking
  | _ -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok (Hbc_core.Compiled.Static n)
      | _ -> Error ("unknown chunk mode: " ^ s))

let bug_to_string = function
  | Hbc_core.Executor.Duplicate_leftover -> "duplicate-leftover"
  | Hbc_core.Executor.Lose_stolen_task -> "lose-stolen-task"
  | Hbc_core.Executor.Promote_innermost -> "promote-innermost"

let bug_of_string = function
  | "duplicate-leftover" -> Ok Hbc_core.Executor.Duplicate_leftover
  | "lose-stolen-task" -> Ok Hbc_core.Executor.Lose_stolen_task
  | "promote-innermost" -> Ok Hbc_core.Executor.Promote_innermost
  | s -> Error ("unknown seeded bug: " ^ s)

(* ------------------------------------------------------------------ *)
(* JSON codec and hashing.                                             *)
(* ------------------------------------------------------------------ *)

let case_to_json c =
  let open Obs.Json in
  let base =
    [
      ("v", Int 1);
      ("seed", Int c.seed);
      ("workload", Str c.workload);
      ("scale", Float c.scale);
      ("workers", Int c.workers);
      ("mechanism", Str (mechanism_to_string c.mechanism));
      ("chunk", Str (chunk_to_string c.chunk));
      ( "policy",
        Str
          (match c.policy with
          | Hbc_core.Rt_config.Outer_loop_first -> "outer"
          | Hbc_core.Rt_config.Innermost_first -> "inner") );
      ( "leftover",
        Str
          (match c.leftover with
          | Hbc_core.Rt_config.Spawn -> "spawn"
          | Hbc_core.Rt_config.Inline -> "inline") );
      ("chunk_transferring", Bool c.chunk_transferring);
      ("ac_target_polls", Int c.ac_target_polls);
      ("ac_window", Int c.ac_window);
      ("fault_seed", Int c.plan.Sim.Fault_plan.seed);
      ("beat_drop", Float c.plan.Sim.Fault_plan.beat_drop_prob);
      ("beat_jitter", Int c.plan.Sim.Fault_plan.beat_jitter);
      ("steal_fail", Float c.plan.Sim.Fault_plan.steal_fail_prob);
      ("steal_burst", Int c.plan.Sim.Fault_plan.steal_fail_burst);
      ("stall_prob", Float c.plan.Sim.Fault_plan.stall_prob);
      ("stall_cycles", Int c.plan.Sim.Fault_plan.stall_cycles);
    ]
  in
  (* The portable-plan and native fields are omitted at their defaults so
     every pre-existing sim repro keeps its canonical bytes (and hash). *)
  let base =
    if c.plan.Sim.Fault_plan.stall_polls = 0 then base
    else base @ [ ("stall_polls", Int c.plan.Sim.Fault_plan.stall_polls) ]
  in
  let base =
    if c.plan.Sim.Fault_plan.delay_wakeup_prob = 0.0 then base
    else base @ [ ("wakeup_delay", Float c.plan.Sim.Fault_plan.delay_wakeup_prob) ]
  in
  let base =
    match c.native_beat with None -> base | Some nb -> base @ [ ("native_beat", Int nb) ]
  in
  let base =
    match c.bug with None -> base | Some b -> base @ [ ("bug", Str (bug_to_string b)) ]
  in
  Obj base

let case_of_json j =
  let open Obs.Json in
  match j with
  | Obj fields -> (
      let ( let* ) = Result.bind in
      let str name = Option.to_result ~none:("missing field " ^ name) (get_str name fields) in
      let int name = Option.to_result ~none:("missing field " ^ name) (get_int name fields) in
      let flt name = Option.to_result ~none:("missing field " ^ name) (get_float name fields) in
      let bol name = Option.to_result ~none:("missing field " ^ name) (get_bool name fields) in
      let* v = int "v" in
      if v <> 1 then Error (Printf.sprintf "unsupported fuzz-case version %d" v)
      else
        let* seed = int "seed" in
        let* workload = str "workload" in
        let* scale = flt "scale" in
        let* workers = int "workers" in
        let* mechanism = Result.bind (str "mechanism") mechanism_of_string in
        let* chunk = Result.bind (str "chunk") chunk_of_string in
        let* policy =
          Result.bind (str "policy") (function
            | "outer" -> Ok Hbc_core.Rt_config.Outer_loop_first
            | "inner" -> Ok Hbc_core.Rt_config.Innermost_first
            | s -> Error ("unknown policy: " ^ s))
        in
        let* leftover =
          Result.bind (str "leftover") (function
            | "spawn" -> Ok Hbc_core.Rt_config.Spawn
            | "inline" -> Ok Hbc_core.Rt_config.Inline
            | s -> Error ("unknown leftover mode: " ^ s))
        in
        let* chunk_transferring = bol "chunk_transferring" in
        let* ac_target_polls = int "ac_target_polls" in
        let* ac_window = int "ac_window" in
        let* fault_seed = int "fault_seed" in
        let* beat_drop = flt "beat_drop" in
        let* beat_jitter = int "beat_jitter" in
        let* steal_fail = flt "steal_fail" in
        let* steal_burst = int "steal_burst" in
        let* stall_prob = flt "stall_prob" in
        let* stall_cycles = int "stall_cycles" in
        (* optional: absent in repros written before the native backend *)
        let stall_polls = Option.value ~default:0 (get_int "stall_polls" fields) in
        let wakeup_delay = Option.value ~default:0.0 (get_float "wakeup_delay" fields) in
        let native_beat = get_int "native_beat" fields in
        let* bug =
          match get_str "bug" fields with
          | None -> Ok None
          | Some s -> Result.map Option.some (bug_of_string s)
        in
        Ok
          {
            seed;
            workload;
            scale;
            workers;
            mechanism;
            chunk;
            policy;
            leftover;
            chunk_transferring;
            ac_target_polls;
            ac_window;
            plan =
              {
                Sim.Fault_plan.seed = fault_seed;
                beat_drop_prob = beat_drop;
                beat_jitter;
                steal_fail_prob = steal_fail;
                steal_fail_burst = steal_burst;
                stall_prob;
                stall_cycles;
                stall_polls;
                delay_wakeup_prob = wakeup_delay;
              };
            bug;
            native_beat;
          })
  | _ -> Error "fuzz case must be a JSON object"

let case_hash c = Digest.to_hex (Digest.string (Obs.Json.to_string (case_to_json c)))

let repro_to_json c ~kind ~summary =
  Obs.Json.Obj
    [
      ("case", case_to_json c);
      ("expect", Obs.Json.Str kind);
      ("summary", Obs.Json.Str summary);
      ("hash", Obs.Json.Str (case_hash c));
    ]

let repro_of_json j =
  match j with
  | Obs.Json.Obj fields -> (
      match (Obs.Json.mem "case" fields, Obs.Json.get_str "expect" fields) with
      | Some cj, Some kind -> Result.map (fun c -> (c, kind)) (case_of_json cj)
      | None, _ -> Error "repro file has no \"case\" field"
      | _, None -> Error "repro file has no \"expect\" field")
  | _ -> Error "repro file must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Generation.                                                         *)
(* ------------------------------------------------------------------ *)

(* Small irregular workloads only: the fuzzer's value is schedule
   diversity, not workload size, and the smoke budget is seconds. *)
let workload_pool =
  [|
    "plus-reduce-array";
    "mandelbrot";
    "spmv-arrowhead";
    "spmv-powerlaw";
    "spmv-random";
    "kmeans";
    "srad";
    "ttv";
    "bfs";
  |]

let pick rng a = a.(Sim.Sim_rng.int rng (Array.length a))

let gen rng =
  let workload = pick rng workload_pool in
  let scale = 0.01 +. Sim.Sim_rng.float rng 0.03 in
  let workers = pick rng [| 1; 2; 4; 8; 16 |] in
  let mechanism =
    pick rng
      [|
        Hbc_core.Rt_config.Software_polling;
        Hbc_core.Rt_config.Interrupt_ping_thread;
        Hbc_core.Rt_config.Interrupt_kernel_module;
      |]
  in
  let chunk =
    match Sim.Sim_rng.int rng 6 with
    | 0 | 1 -> Hbc_core.Compiled.Adaptive
    | 2 -> Hbc_core.Compiled.No_chunking
    | _ -> Hbc_core.Compiled.Static (pick rng [| 1; 4; 32; 256 |])
  in
  let policy =
    if Sim.Sim_rng.int rng 4 = 0 then Hbc_core.Rt_config.Innermost_first
    else Hbc_core.Rt_config.Outer_loop_first
  in
  let leftover =
    if Sim.Sim_rng.int rng 4 = 0 then Hbc_core.Rt_config.Inline else Hbc_core.Rt_config.Spawn
  in
  let chunk_transferring = Sim.Sim_rng.bool rng in
  let ac_target_polls = 1 + Sim.Sim_rng.int rng 12 in
  let ac_window = 1 + Sim.Sim_rng.int rng 8 in
  let plan =
    if Sim.Sim_rng.bool rng then Sim.Fault_plan.none
    else
      {
        Sim.Fault_plan.none with
        Sim.Fault_plan.seed = Sim.Sim_rng.int rng 1_000_000;
        beat_drop_prob = Sim.Sim_rng.float rng 0.4;
        beat_jitter = Sim.Sim_rng.int rng 3_000;
        steal_fail_prob = Sim.Sim_rng.float rng 0.5;
        steal_fail_burst = Sim.Sim_rng.int rng 4;
        stall_prob = Sim.Sim_rng.float rng 0.2;
        stall_cycles = 1 + Sim.Sim_rng.int rng 3_000;
      }
  in
  {
    seed = Sim.Sim_rng.int rng 1_000_000;
    workload;
    scale;
    workers;
    mechanism;
    chunk;
    policy;
    leftover;
    chunk_transferring;
    ac_target_polls;
    ac_window;
    plan;
    bug = None;
    native_beat = None;
  }

(* Native chaos cases: the domains backend under a deterministic beat and
   a portable-only fault plan. Worker counts stay small (these run on real
   domains inside CI), the beat is coarse enough that runs finish fast,
   and the plan never includes simulator-only kinds, so [run_case] always
   dispatches cleanly. *)
let gen_native rng =
  let workload = pick rng workload_pool in
  let scale = 0.01 +. Sim.Sim_rng.float rng 0.03 in
  let workers = pick rng [| 1; 2; 4 |] in
  let chunk =
    match Sim.Sim_rng.int rng 6 with
    | 0 | 1 -> Hbc_core.Compiled.Adaptive
    | 2 -> Hbc_core.Compiled.No_chunking
    | _ -> Hbc_core.Compiled.Static (pick rng [| 1; 4; 32; 256 |])
  in
  let policy =
    if Sim.Sim_rng.int rng 4 = 0 then Hbc_core.Rt_config.Innermost_first
    else Hbc_core.Rt_config.Outer_loop_first
  in
  let leftover =
    if Sim.Sim_rng.int rng 4 = 0 then Hbc_core.Rt_config.Inline else Hbc_core.Rt_config.Spawn
  in
  let plan =
    if Sim.Sim_rng.bool rng then Sim.Fault_plan.none else Sim.Fault_plan.random_portable rng
  in
  {
    seed = Sim.Sim_rng.int rng 1_000_000;
    workload;
    scale;
    workers;
    mechanism = Hbc_core.Rt_config.Software_polling;
    chunk;
    policy;
    leftover;
    chunk_transferring = Sim.Sim_rng.bool rng;
    ac_target_polls = 1 + Sim.Sim_rng.int rng 12;
    ac_window = 1 + Sim.Sim_rng.int rng 8;
    plan;
    bug = None;
    native_beat = Some (pick rng [| 16; 32; 64; 128 |]);
  }

(* ------------------------------------------------------------------ *)
(* Serve-mode workload mixes.                                          *)
(* ------------------------------------------------------------------ *)

(* Plain data on purpose: the sanitizer library sits below the server in
   the dependency order, so a mix describes N tenants (arrival process in
   its string codec form, workloads, fault plan, deadlines) without
   referencing server types; [Serve.Fuzz] interprets it. *)

type mix_tenant = {
  mt_weight : int;
  mt_arrival : string;
  mt_jobs : int;
  mt_workloads : string list;
  mt_scale : float;
  mt_workers : int;
  mt_deadline : (int * int) option;
  mt_cycle_budget : (int * int) option;
  mt_plan : Sim.Fault_plan.t option;
  mt_promotion_want : int;
}

type mix = {
  mix_seed : int;
  mix_pool : int;
  mix_queue : int;
  mix_preempt : string;
  mix_tenants : mix_tenant list;
}

let gen_arrival rng =
  match Sim.Sim_rng.int rng 3 with
  | 0 -> Printf.sprintf "poisson:%d" (2_000 + Sim.Sim_rng.int rng 18_000)
  | 1 -> Printf.sprintf "burst:%d:%d" (5_000 + Sim.Sim_rng.int rng 35_000) (2 + Sim.Sim_rng.int rng 4)
  | _ ->
      Printf.sprintf "adversarial:%d:%d"
        (10_000 + Sim.Sim_rng.int rng 40_000)
        (3 + Sim.Sim_rng.int rng 6)

let gen_mix_tenant rng ~pool ~faulty =
  let n_wl = 1 + Sim.Sim_rng.int rng 3 in
  let workloads = List.init n_wl (fun _ -> pick rng workload_pool) in
  (* Low end tight enough that a pause-policy quantum lands inside a
     typical job's makespan (so preemption paths actually run), high end
     loose enough that most jobs still complete. *)
  let deadline =
    if Sim.Sim_rng.bool rng then
      let base = 8_000 + Sim.Sim_rng.int rng 150_000 in
      Some (base, 3 * base)
    else None
  in
  let plan =
    if not faulty then None
    else
      Some
        {
          Sim.Fault_plan.none with
          Sim.Fault_plan.seed = Sim.Sim_rng.int rng 1_000_000;
          beat_drop_prob = Sim.Sim_rng.float rng 0.4;
          beat_jitter = Sim.Sim_rng.int rng 3_000;
          steal_fail_prob = Sim.Sim_rng.float rng 0.5;
          steal_fail_burst = Sim.Sim_rng.int rng 4;
          stall_prob = Sim.Sim_rng.float rng 0.2;
          stall_cycles = 1 + Sim.Sim_rng.int rng 3_000;
        }
  in
  {
    mt_weight = 1 + Sim.Sim_rng.int rng 3;
    mt_arrival = gen_arrival rng;
    mt_jobs = 3 + Sim.Sim_rng.int rng 5;
    mt_workloads = workloads;
    mt_scale = 0.01 +. Sim.Sim_rng.float rng 0.02;
    mt_workers = 1 + Sim.Sim_rng.int rng pool;
    mt_deadline = deadline;
    mt_cycle_budget =
      (if faulty then
         let base = 100_000 + Sim.Sim_rng.int rng 400_000 in
         Some (base, 2 * base)
       else None);
    mt_plan = plan;
    mt_promotion_want = 4 + Sim.Sim_rng.int rng 28;
  }

let gen_mix rng =
  let pool = pick rng [| 4; 8; 16 |] in
  let tenants = 2 + Sim.Sim_rng.int rng 3 in
  let faulty_tenant = if Sim.Sim_rng.int rng 4 = 0 then Some (Sim.Sim_rng.int rng tenants) else None in
  {
    mix_seed = Sim.Sim_rng.int rng 1_000_000;
    mix_pool = pool;
    mix_queue = 2 + Sim.Sim_rng.int rng 9;
    mix_preempt = (if Sim.Sim_rng.bool rng then "pause" else "cancel");
    mix_tenants =
      List.init tenants (fun i -> gen_mix_tenant rng ~pool ~faulty:(faulty_tenant = Some i));
  }

let mix_hash m =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (m.mix_seed, m.mix_pool, m.mix_queue, m.mix_preempt, m.mix_tenants)
          []))

let mix_describe m =
  Printf.sprintf "mix seed=%d pool=%d queue=%d policy=%s tenants=[%s]" m.mix_seed m.mix_pool
    m.mix_queue m.mix_preempt
    (String.concat "; "
       (List.map
          (fun t ->
            Printf.sprintf "%s jobs=%d w=%d%s%s" t.mt_arrival t.mt_jobs t.mt_workers
              (match t.mt_deadline with
              | Some (lo, hi) -> Printf.sprintf " dl=%d..%d" lo hi
              | None -> "")
              (if t.mt_plan <> None then " FAULTY" else ""))
          m.mix_tenants))

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)
(* ------------------------------------------------------------------ *)

let rt_of_case c =
  {
    Hbc_core.Rt_config.default with
    Hbc_core.Rt_config.workers = c.workers;
    mechanism = c.mechanism;
    chunk = c.chunk;
    ac_target_polls = c.ac_target_polls;
    ac_window = c.ac_window;
    leftover = c.leftover;
    policy = c.policy;
    chunk_transferring = c.chunk_transferring;
    seed = c.seed;
  }

let run_case c =
  let entry = Workloads.Registry.find c.workload in
  let (Ir.Program.Any p) = entry.Workloads.Registry.make c.scale in
  let seq = Baselines.Serial_exec.run_program p in
  (* Generous cap: heavy fault plans and No_chunking overheads legitimately
     cost many times the pure work; only livelock-grade schedules hit it. *)
  let cap = (100 * seq.Sim.Run_result.work_cycles) + 10_000_000 in
  let rt = rt_of_case c in
  let san = Checker.create (Checker.config_of_rt rt) in
  let request =
    Hbc_core.Run_request.make
      ?backend:(match c.native_beat with Some _ -> Some Sched.Policy.Domains | None -> None)
      ?max_cycles:(match c.native_beat with Some _ -> None | None -> Some cap)
      ?fault_plan:(if Sim.Fault_plan.is_zero c.plan then None else Some c.plan)
      ~trace:(Checker.sink san) ~sanitize:true ~fuzz_case:(case_hash c) ()
  in
  Hbc_core.Executor.set_seeded_bug c.bug;
  let run () =
    try
      Ok
        (match c.native_beat with
        | Some nb ->
            (* Real domains: the sanitizer consumes the backend-linearized
               stream; the virtual-time cap does not apply (wall time is
               bounded by the workload scale). *)
            Hb_parallel.Native_run.run ~request
              ~beat:(Hb_parallel.Native_run.Every_polls nb)
              rt p
        | None -> Hbc_core.Executor.run ~request rt p)
    with e -> Error (Printexc.to_string e)
  in
  let result = Fun.protect ~finally:(fun () -> Hbc_core.Executor.set_seeded_bug None) run in
  Checker.finish san;
  let failure =
    match result with
    | Error msg -> Some (Crash msg)
    | Ok r ->
        if r.Sim.Run_result.dnf then Some Dnf
        else if not (Checker.ok san) then Some (Violations (Checker.violations san))
        else if not (Sim.Run_result.fingerprints_close seq r) then
          Some
            (Mismatch
               {
                 expected = seq.Sim.Run_result.fingerprint;
                 got = r.Sim.Run_result.fingerprint;
               })
        else None
  in
  {
    case = c;
    failure;
    sanitizer_summary = Checker.summary san;
    makespan = (match result with Ok r -> r.Sim.Run_result.makespan | Error _ -> 0);
  }

(* ------------------------------------------------------------------ *)
(* Shrinking.                                                          *)
(* ------------------------------------------------------------------ *)

(* Candidate reductions, most aggressive first. Each returns a strictly
   "smaller or more default" case, or None when it would not change it. *)
let shrink_candidates c =
  let if_changed c' = if c' = c then None else Some c' in
  [
    (if c.scale > 0.011 then Some { c with scale = c.scale /. 2.0 } else None);
    if_changed { c with plan = Sim.Fault_plan.none };
    if_changed { c with plan = { c.plan with Sim.Fault_plan.beat_drop_prob = 0.0; beat_jitter = 0 } };
    if_changed { c with plan = { c.plan with Sim.Fault_plan.steal_fail_prob = 0.0; steal_fail_burst = 0 } };
    if_changed
      { c with plan = { c.plan with Sim.Fault_plan.stall_prob = 0.0; stall_cycles = 0; stall_polls = 0 } };
    if_changed { c with plan = { c.plan with Sim.Fault_plan.delay_wakeup_prob = 0.0 } };
    (if c.workers > 1 then Some { c with workers = c.workers / 2 } else None);
    if_changed { c with mechanism = Hbc_core.Rt_config.Software_polling };
    if_changed { c with chunk = Hbc_core.Compiled.Adaptive };
    if_changed { c with ac_target_polls = 8; ac_window = 8 };
    if_changed { c with policy = Hbc_core.Rt_config.Outer_loop_first };
    if_changed { c with leftover = Hbc_core.Rt_config.Spawn };
    if_changed { c with chunk_transferring = true };
  ]

let shrink c ~kind =
  let runs = ref 0 in
  let still_fails c' =
    incr runs;
    match (run_case c').failure with
    | Some f -> failure_kind f = kind
    | None -> false
  in
  let rec fixpoint c budget =
    if budget = 0 then c
    else
      let rec try_candidates = function
        | [] -> None
        | None :: rest -> try_candidates rest
        | Some c' :: rest -> if still_fails c' then Some c' else try_candidates rest
      in
      match try_candidates (shrink_candidates c) with
      | Some c' -> fixpoint c' (budget - 1)
      | None -> c
  in
  let c' = fixpoint c 64 in
  (c', !runs)
