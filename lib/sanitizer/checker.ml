type invariant =
  | Work_conservation
  | Deque_discipline
  | Promotion_policy
  | Chunk_consistency
  | Clock_sanity
  | Job_conservation
  | Budget_conservation
  | Resume_conservation

let invariant_name = function
  | Work_conservation -> "work-conservation"
  | Deque_discipline -> "deque-discipline"
  | Promotion_policy -> "promotion-policy"
  | Chunk_consistency -> "chunk-consistency"
  | Clock_sanity -> "clock-sanity"
  | Job_conservation -> "job-conservation"
  | Budget_conservation -> "budget-conservation"
  | Resume_conservation -> "resume-conservation"

type violation = {
  invariant : invariant;
  time : int;
  worker : int;
  message : string;
  window : Obs.Trace.record list;
}

exception Violation of violation

type config = { policy : Hbc_core.Rt_config.promotion_policy; ac_target_polls : int }

let config_of_rt (cfg : Hbc_core.Rt_config.t) =
  { policy = cfg.Hbc_core.Rt_config.policy; ac_target_polls = cfg.Hbc_core.Rt_config.ac_target_polls }

(* Per-invocation coverage: [covered] is a sorted list of disjoint
   executed intervals inside [s_lo, s_hi). *)
type slice_state = { s_lo : int; s_hi : int; mutable covered : (int * int) list }

(* Task lifecycle replayed from the deque records. *)
type task_phase = Pushed | Taken | Executed

(* Serve-mode job lifecycle replayed from the Job_* records; [J_terminal]
   carries the terminal state name for duplicate-termination messages.
   [granted] accumulates across pause/resume episodes — a resumed job's
   total promotion use is checked against the sum of every grant it drew
   — and [episodes] counts completed pause/resume episodes so a
   [Job_resumed] record claiming the wrong episode is flagged. *)
type job_phase =
  | J_submitted
  | J_admitted
  | J_started of { granted : int; episodes : int }
  | J_checkpointed of { granted : int; episodes : int }
  | J_terminal of string

type t = {
  cfg : config;
  strict : bool;
  window_cap : int;
  max_violations : int;
  window : Obs.Trace.record Queue.t;
  mutable seq : int;
  mutable records : int;
  mutable last_time : int;
  slices : (int * int * int, slice_state) Hashtbl.t;  (* (nest, ord, key) *)
  tasks : (int, task_phase) Hashtbl.t;
  shadow : (int, int Sim.Deque.t) Hashtbl.t;  (* worker -> shadow deque of ids *)
  last_interval_end : (int, int) Hashtbl.t;  (* worker -> end of last Interval *)
  jobs : (int, int * job_phase) Hashtbl.t;  (* job -> (tenant, phase) *)
  tenant_balance : (int, int) Hashtbl.t;  (* tenant -> metered promotion balance *)
  mutable kept : violation list;  (* newest first *)
  mutable count : int;
  mutable finished : bool;
}

let create ?(strict = false) ?(window = 32) ?(max_violations = 100) cfg =
  {
    cfg;
    strict;
    window_cap = Stdlib.max 1 window;
    max_violations;
    window = Queue.create ();
    seq = 0;
    records = 0;
    last_time = 0;
    slices = Hashtbl.create 64;
    tasks = Hashtbl.create 64;
    jobs = Hashtbl.create 16;
    tenant_balance = Hashtbl.create 8;
    shadow = Hashtbl.create 8;
    last_interval_end = Hashtbl.create 8;
    kept = [];
    count = 0;
    finished = false;
  }

let violate t ~time ~worker invariant message =
  let v = { invariant; time; worker; message; window = List.of_seq (Queue.to_seq t.window) } in
  t.count <- t.count + 1;
  if List.length t.kept < t.max_violations then t.kept <- v :: t.kept;
  if t.strict then raise (Violation v)

let shadow_deque t worker =
  match Hashtbl.find_opt t.shadow worker with
  | Some d -> d
  | None ->
      let d = Sim.Deque.create () in
      Hashtbl.add t.shadow worker d;
      d

let phase_name = function Pushed -> "enqueued" | Taken -> "taken" | Executed -> "executed"

(* Insert [lo, hi) into a sorted disjoint interval list, or report the
   first already-covered interval it overlaps. *)
let insert_interval ss ~lo ~hi =
  let rec go acc = function
    | [] -> Ok (List.rev_append acc [ (lo, hi) ])
    | (a, b) :: rest ->
        if hi <= a then Ok (List.rev_append acc ((lo, hi) :: (a, b) :: rest))
        else if b <= lo then go ((a, b) :: acc) rest
        else Error (a, b)
  in
  match go [] ss.covered with
  | Ok l ->
      ss.covered <- l;
      None
  | Error ab -> Some ab

let on_slice_enter t ~time ~worker ~nest ~ord ~key ~lo ~hi =
  let k = (nest, ord, key) in
  match Hashtbl.find_opt t.slices k with
  | Some _ ->
      violate t ~time ~worker Work_conservation
        (Printf.sprintf "slice invocation (nest %d, loop %d, key %d) entered twice" nest ord key)
  | None -> Hashtbl.add t.slices k { s_lo = lo; s_hi = hi; covered = [] }

let on_iter_exec t ~time ~worker ~nest ~ord ~key ~lo ~hi =
  let k = (nest, ord, key) in
  match Hashtbl.find_opt t.slices k with
  | None ->
      violate t ~time ~worker Work_conservation
        (Printf.sprintf "iterations [%d, %d) executed for unknown slice invocation (nest %d, loop %d, key %d)"
           lo hi nest ord key)
  | Some ss ->
      if lo < ss.s_lo || hi > ss.s_hi then
        violate t ~time ~worker Work_conservation
          (Printf.sprintf
             "iterations [%d, %d) executed outside slice bounds [%d, %d) (nest %d, loop %d)" lo hi
             ss.s_lo ss.s_hi nest ord)
      else
        match insert_interval ss ~lo ~hi with
        | None -> ()
        | Some (a, b) ->
            violate t ~time ~worker Work_conservation
              (Printf.sprintf
                 "iterations [%d, %d) of (nest %d, loop %d) executed twice (overlap with [%d, %d))"
                 lo hi nest ord a b)

let on_task_pushed t ~time ~worker ~task =
  (match Hashtbl.find_opt t.tasks task with
  | Some _ ->
      violate t ~time ~worker Deque_discipline (Printf.sprintf "task %d pushed twice" task)
  | None -> Hashtbl.replace t.tasks task Pushed);
  Sim.Deque.push_bottom (shadow_deque t worker) task

let take t ~time ~worker ~task how =
  match Hashtbl.find_opt t.tasks task with
  | Some Pushed -> Hashtbl.replace t.tasks task Taken
  | Some (Taken | Executed) as p ->
      violate t ~time ~worker Deque_discipline
        (Printf.sprintf "task %d %s while already %s" task how
           (phase_name (Option.get p)))
  | None ->
      violate t ~time ~worker Deque_discipline
        (Printf.sprintf "task %d %s but was never pushed" task how)

let on_task_popped t ~time ~worker ~task =
  (match Sim.Deque.pop_bottom (shadow_deque t worker) with
  | Some id when id = task -> ()
  | Some id ->
      violate t ~time ~worker Deque_discipline
        (Printf.sprintf "owner pop of task %d does not match deque bottom (task %d)" task id)
  | None ->
      violate t ~time ~worker Deque_discipline
        (Printf.sprintf "owner pop of task %d from an empty deque" task));
  take t ~time ~worker ~task "popped"

let on_task_stolen t ~time ~worker ~task ~victim =
  if worker = victim then
    violate t ~time ~worker Deque_discipline
      (Printf.sprintf "worker %d stole task %d from its own deque" worker task);
  (match Sim.Deque.steal (shadow_deque t victim) with
  | Some id when id = task -> ()
  | Some id ->
      violate t ~time ~worker Deque_discipline
        (Printf.sprintf "steal of task %d does not match deque top (task %d) of worker %d" task id
           victim)
  | None ->
      violate t ~time ~worker Deque_discipline
        (Printf.sprintf "steal of task %d from empty deque of worker %d" task victim));
  take t ~time ~worker ~task "stolen"

let on_task_exec t ~time ~worker ~task =
  match Hashtbl.find_opt t.tasks task with
  | Some Taken -> Hashtbl.replace t.tasks task Executed
  | Some Executed ->
      violate t ~time ~worker Deque_discipline (Printf.sprintf "task %d executed twice" task)
  | Some Pushed ->
      violate t ~time ~worker Deque_discipline
        (Printf.sprintf "task %d executed while still enqueued" task)
  | None ->
      violate t ~time ~worker Deque_discipline
        (Printf.sprintf "task %d executed but was never pushed" task)

let on_promote_choice t ~time ~worker ~cur ~tgt ~chain =
  let eligible = List.filter (fun (_, s, rem) -> s && rem >= 1) chain in
  let expected =
    match t.cfg.policy with
    | Hbc_core.Rt_config.Outer_loop_first -> (
        match eligible with [] -> None | (o, _, _) :: _ -> Some o)
    | Hbc_core.Rt_config.Innermost_first -> (
        match List.rev eligible with [] -> None | (o, _, _) :: _ -> Some o)
  in
  match expected with
  | None ->
      violate t ~time ~worker Promotion_policy
        (Printf.sprintf "promotion at loop %d chose loop %d with no eligible candidate" cur tgt)
  | Some e when e <> tgt ->
      let dir =
        match t.cfg.policy with
        | Hbc_core.Rt_config.Outer_loop_first -> "outer-loop-first"
        | Hbc_core.Rt_config.Innermost_first -> "innermost-first"
      in
      violate t ~time ~worker Promotion_policy
        (Printf.sprintf "promotion at loop %d chose loop %d, but %s requires loop %d" cur tgt dir e)
  | Some _ -> ()

let on_chunk_decision t ~time ~worker ~key ~old_chunk ~min_polls ~chunk =
  (* Replay the executor's update rule with the same float operations. *)
  let ratio = Float.of_int min_polls /. Float.of_int t.cfg.ac_target_polls in
  let expected = Stdlib.max 1 (int_of_float (Float.round (Float.of_int old_chunk *. ratio))) in
  if chunk <> expected then
    violate t ~time ~worker Chunk_consistency
      (Printf.sprintf
         "chunk update %d -> %d (slice key %d) does not match rule max 1 (round (%d * %d / %d)) = %d"
         old_chunk chunk key old_chunk min_polls t.cfg.ac_target_polls expected)

(* ------------------------------------------------------------------ *)
(* Serve-mode invariants: job conservation and budget conservation.     *)
(* ------------------------------------------------------------------ *)

let job_phase_name = function
  | J_submitted -> "submitted"
  | J_admitted -> "admitted"
  | J_started _ -> "started"
  | J_checkpointed _ -> "checkpointed"
  | J_terminal s -> s

let balance_of t tenant = Option.value ~default:0 (Hashtbl.find_opt t.tenant_balance tenant)

let on_job_submitted t ~time ~worker ~job ~tenant =
  match Hashtbl.find_opt t.jobs job with
  | Some (_, phase) ->
      violate t ~time ~worker Job_conservation
        (Printf.sprintf "job %d submitted twice (already %s)" job (job_phase_name phase))
  | None -> Hashtbl.add t.jobs job (tenant, J_submitted)

let on_job_admitted t ~time ~worker ~job ~tenant =
  match Hashtbl.find_opt t.jobs job with
  | Some (_, J_submitted) -> Hashtbl.replace t.jobs job (tenant, J_admitted)
  | Some (_, phase) ->
      violate t ~time ~worker Job_conservation
        (Printf.sprintf "job %d admitted while %s" job (job_phase_name phase))
  | None ->
      violate t ~time ~worker Job_conservation
        (Printf.sprintf "job %d admitted but never submitted" job)

let on_job_shed t ~time ~worker ~job ~tenant ~reason =
  match Hashtbl.find_opt t.jobs job with
  | Some (_, J_submitted) -> Hashtbl.replace t.jobs job (tenant, J_terminal ("shed:" ^ reason))
  | Some (_, phase) ->
      violate t ~time ~worker Job_conservation
        (Printf.sprintf "job %d shed (%s) while %s — shedding is legal only at submission" job
           reason (job_phase_name phase))
  | None ->
      violate t ~time ~worker Job_conservation
        (Printf.sprintf "job %d shed (%s) but never submitted" job reason)

let on_job_started t ~time ~worker ~job ~tenant ~budget =
  (match Hashtbl.find_opt t.jobs job with
  | Some (_, J_admitted) ->
      Hashtbl.replace t.jobs job (tenant, J_started { granted = budget; episodes = 0 })
  | Some (_, phase) ->
      violate t ~time ~worker Job_conservation
        (Printf.sprintf "job %d started while %s" job (job_phase_name phase))
  | None ->
      violate t ~time ~worker Job_conservation
        (Printf.sprintf "job %d started but never admitted" job));
  let balance = balance_of t tenant - budget in
  Hashtbl.replace t.tenant_balance tenant balance;
  if balance < 0 then
    violate t ~time ~worker Budget_conservation
      (Printf.sprintf
         "tenant %d overdrew its promotion meter: grant %d drove the balance to %d" tenant budget
         balance)

(* Resume conservation: pause/resume episodes must alternate correctly —
   only a started job checkpoints, only a checkpointed job resumes, the
   resume's episode number matches the pauses that actually happened, and
   grants accumulate so the final promotion count is checked against the
   whole history. The exactly-once tiling of the iteration space across
   episodes is enforced by the per-job work-conservation checker, whose
   sink persists across episodes and sees each episode's events exactly
   once (resumed runs mute the replayed prefix). *)
let on_job_checkpointed t ~time ~worker ~job ~tenant ~at_cycle =
  match Hashtbl.find_opt t.jobs job with
  | Some (_, J_started { granted; episodes }) ->
      if at_cycle <= 0 then
        violate t ~time ~worker Resume_conservation
          (Printf.sprintf "job %d checkpointed at non-positive cycle %d" job at_cycle);
      Hashtbl.replace t.jobs job (tenant, J_checkpointed { granted; episodes = episodes + 1 })
  | Some (_, phase) ->
      violate t ~time ~worker Resume_conservation
        (Printf.sprintf "job %d checkpointed while %s" job (job_phase_name phase))
  | None ->
      violate t ~time ~worker Resume_conservation
        (Printf.sprintf "job %d checkpointed but never submitted" job)

let on_job_resumed t ~time ~worker ~job ~tenant ~episode ~budget =
  (match Hashtbl.find_opt t.jobs job with
  | Some (_, J_checkpointed { granted; episodes }) ->
      if episode <> episodes then
        violate t ~time ~worker Resume_conservation
          (Printf.sprintf "job %d resumed claiming episode %d but %d pause(s) happened" job
             episode episodes);
      Hashtbl.replace t.jobs job (tenant, J_started { granted = granted + budget; episodes })
  | Some (_, phase) ->
      violate t ~time ~worker Resume_conservation
        (Printf.sprintf "job %d resumed while %s (only a checkpointed job can resume)" job
           (job_phase_name phase))
  | None ->
      violate t ~time ~worker Resume_conservation
        (Printf.sprintf "job %d resumed but never submitted" job));
  let balance = balance_of t tenant - budget in
  Hashtbl.replace t.tenant_balance tenant balance;
  if balance < 0 then
    violate t ~time ~worker Budget_conservation
      (Printf.sprintf
         "tenant %d overdrew its promotion meter: resume grant %d drove the balance to %d" tenant
         budget balance)

let on_job_preempted t ~time ~worker ~job =
  match Hashtbl.find_opt t.jobs job with
  | Some (_, J_started _) -> ()
  | Some (_, phase) ->
      violate t ~time ~worker Job_conservation
        (Printf.sprintf "job %d preempted while %s" job (job_phase_name phase))
  | None ->
      violate t ~time ~worker Job_conservation
        (Printf.sprintf "job %d preempted but never admitted" job)

let on_job_finished t ~time ~worker ~job ~tenant ~state ~promotions =
  match Hashtbl.find_opt t.jobs job with
  | Some (_, (J_started { granted; _ } | J_checkpointed { granted; _ })) ->
      (* A checkpointed job may terminate without resuming (its episode
         budget ran out, or its refreshed deadline expired in the queue);
         either way the whole history's promotions are bounded by the
         accumulated grants. *)
      Hashtbl.replace t.jobs job (tenant, J_terminal state);
      if promotions > granted then
        violate t ~time ~worker Budget_conservation
          (Printf.sprintf "job %d used %d promotions against a grant of %d" job promotions granted)
  | Some (_, J_admitted) ->
      (* A queued job can expire at its deadline without ever starting; it
         must then have consumed nothing. *)
      Hashtbl.replace t.jobs job (tenant, J_terminal state);
      if promotions <> 0 then
        violate t ~time ~worker Budget_conservation
          (Printf.sprintf "job %d finished from the queue yet reports %d promotions" job promotions)
  | Some (_, phase) ->
      violate t ~time ~worker Job_conservation
        (Printf.sprintf "job %d finished (%s) while %s" job state (job_phase_name phase))
  | None ->
      violate t ~time ~worker Job_conservation
        (Printf.sprintf "job %d finished (%s) but never submitted" job state)

let on_budget_refill t ~tenant ~amount =
  Hashtbl.replace t.tenant_balance tenant (balance_of t tenant + amount)

let on_interval t ~time ~worker ~t0 =
  if t0 > time then
    violate t ~time ~worker Clock_sanity
      (Printf.sprintf "interval start %d after its own end %d" t0 time);
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.last_interval_end worker) in
  if t0 < prev then
    violate t ~time ~worker Clock_sanity
      (Printf.sprintf "interval [%d, %d) overlaps the previous interval ending at %d on worker %d"
         t0 time prev worker);
  Hashtbl.replace t.last_interval_end worker (Stdlib.max prev time)

let on_event t ~time ~worker (ev : Obs.Trace.event) =
  t.seq <- t.seq + 1;
  t.records <- t.records + 1;
  let record = { Obs.Trace.seq = t.seq; time; worker; event = ev } in
  if Queue.length t.window >= t.window_cap then ignore (Queue.pop t.window);
  Queue.push record t.window;
  (* The engine dispatches fibers in global nondecreasing virtual-time
     order, so every emission — any worker, any source — must carry a
     time >= the previous one. *)
  if time < t.last_time then
    violate t ~time ~worker Clock_sanity
      (Printf.sprintf "record time %d went backwards (previous record at %d)" time t.last_time);
  t.last_time <- Stdlib.max t.last_time time;
  match ev with
  | Obs.Trace.Slice_enter { nest; ord; key; lo; hi } ->
      on_slice_enter t ~time ~worker ~nest ~ord ~key ~lo ~hi
  | Obs.Trace.Iter_exec { nest; ord; key; lo; hi } ->
      on_iter_exec t ~time ~worker ~nest ~ord ~key ~lo ~hi
  | Obs.Trace.Task_pushed { task } -> on_task_pushed t ~time ~worker ~task
  | Obs.Trace.Task_popped { task } -> on_task_popped t ~time ~worker ~task
  | Obs.Trace.Task_stolen { task; victim } -> on_task_stolen t ~time ~worker ~task ~victim
  | Obs.Trace.Task_exec { task } -> on_task_exec t ~time ~worker ~task
  | Obs.Trace.Promote_choice { cur; tgt; chain } -> on_promote_choice t ~time ~worker ~cur ~tgt ~chain
  | Obs.Trace.Chunk_decision { key; old_chunk; min_polls; chunk } ->
      on_chunk_decision t ~time ~worker ~key ~old_chunk ~min_polls ~chunk
  | Obs.Trace.Interval { t0; kind = _ } -> on_interval t ~time ~worker ~t0
  | Obs.Trace.Job_submitted { job; tenant } -> on_job_submitted t ~time ~worker ~job ~tenant
  | Obs.Trace.Job_admitted { job; tenant; queued = _ } ->
      on_job_admitted t ~time ~worker ~job ~tenant
  | Obs.Trace.Job_shed { job; tenant; reason } -> on_job_shed t ~time ~worker ~job ~tenant ~reason
  | Obs.Trace.Job_started { job; tenant; budget } ->
      on_job_started t ~time ~worker ~job ~tenant ~budget
  | Obs.Trace.Job_preempted { job; tenant = _ } -> on_job_preempted t ~time ~worker ~job
  | Obs.Trace.Job_checkpointed { job; tenant; at_cycle } ->
      on_job_checkpointed t ~time ~worker ~job ~tenant ~at_cycle
  | Obs.Trace.Job_resumed { job; tenant; episode; budget } ->
      on_job_resumed t ~time ~worker ~job ~tenant ~episode ~budget
  | Obs.Trace.Job_finished { job; tenant; state; promotions } ->
      on_job_finished t ~time ~worker ~job ~tenant ~state ~promotions
  | Obs.Trace.Budget_refill { tenant; amount } -> on_budget_refill t ~tenant ~amount
  | _ -> ()

let sink t = Obs.Trace.Sink.fn (fun ~time ~worker ev -> on_event t ~time ~worker ev)

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let time = t.last_time and worker = -1 in
    (* Work conservation: every slice invocation's range must be tiled. *)
    let slices = Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.slices [] in
    let slices = List.sort compare slices in
    List.iter
      (fun ((nest, ord, key), ss) ->
        let covered = List.sort compare ss.covered in
        let rec gaps pos = function
          | [] -> if pos < ss.s_hi then [ (pos, ss.s_hi) ] else []
          | (a, b) :: rest -> if pos < a then (pos, a) :: gaps b rest else gaps b rest
        in
        List.iter
          (fun (a, b) ->
            violate t ~time ~worker Work_conservation
              (Printf.sprintf "iterations [%d, %d) of (nest %d, loop %d, key %d) never executed" a
                 b nest ord key))
          (gaps ss.s_lo covered))
      slices;
    (* Deque discipline: no task may remain unexecuted. *)
    let tasks = Hashtbl.fold (fun id p acc -> (id, p) :: acc) t.tasks [] in
    List.iter
      (fun (id, p) ->
        match p with
        | Executed -> ()
        | Pushed ->
            violate t ~time ~worker Deque_discipline
              (Printf.sprintf "task %d pushed but never executed" id)
        | Taken ->
            violate t ~time ~worker Deque_discipline
              (Printf.sprintf "task %d taken from its deque but never executed (lost)" id))
      (List.sort compare tasks);
    (* Job conservation: every submitted job must have reached exactly one
       terminal state (shed at submission, or a Job_finished accounting). *)
    let jobs = Hashtbl.fold (fun id jp acc -> (id, jp) :: acc) t.jobs [] in
    List.iter
      (fun (id, (tenant, phase)) ->
        match phase with
        | J_terminal _ -> ()
        | J_checkpointed { episodes; _ } ->
            violate t ~time ~worker Resume_conservation
              (Printf.sprintf
                 "job %d (tenant %d) checkpointed (episode %d) but never resumed or finished" id
                 tenant episodes)
        | J_submitted | J_admitted | J_started _ ->
            violate t ~time ~worker Job_conservation
              (Printf.sprintf "job %d (tenant %d) never terminated: still %s at end of run" id
                 tenant (job_phase_name phase)))
      (List.sort compare jobs)
  end

let violations t = List.rev t.kept

let violation_count t = t.count

let ok t = t.count = 0

let records_seen t = t.records

let summary t =
  if t.count = 0 then
    Printf.sprintf "sanitizer: OK (%d records, %d slices, %d tasks)" t.records
      (Hashtbl.length t.slices) (Hashtbl.length t.tasks)
  else
    match List.rev t.kept with
    | [] -> Printf.sprintf "sanitizer: %d violation(s)" t.count
    | v :: _ ->
        Printf.sprintf "sanitizer: %d violation(s); first [%s] at t=%d w=%d: %s" t.count
          (invariant_name v.invariant) v.time v.worker v.message
