(** Online scheduler-invariant sanitizer.

    A sanitizer is an {!Obs.Trace.Sink.t}: tee it with whatever sink a run
    already carries and it checks, record by record and at zero
    virtual-time cost, the correctness properties the paper's scheduler
    argues invariant-by-invariant:

    - {b work conservation} (Algorithms 1–2): every iteration of every
      loop-slice invocation executes exactly once, across promotions,
      steals, leftover tasks, and faults — tracked as interval bookkeeping
      over [Slice_enter]/[Iter_exec] records;
    - {b deque discipline}: owners push/pop at the bottom, thieves steal at
      the top, and no task is executed twice or lost (a shadow Chase–Lev
      deque per worker replays every [Task_*] record);
    - {b promotion policy} (outer-loop-first, Sec. 2): each
      [Promote_choice] must pick the outermost statically-splittable loop
      with remaining iterations (innermost under the ablation policy);
    - {b chunk-transfer consistency} (Sec. 5.1): every [Chunk_decision]
      must match the sliding-window update rule
      [max 1 (round (old * min_polls / target))];
    - {b clock sanity}: record times are monotone and per-worker execution
      intervals are well-formed and non-overlapping;
    - {b job conservation} (serve mode): every submitted job reaches
      exactly one terminal state — shed at submission, or a single
      [Job_finished] accounting — and the lifecycle transitions
      (submitted → admitted → started → finished) are respected;
    - {b budget conservation} (serve mode): no tenant's metered promotion
      balance goes negative across [Budget_refill]/[Job_started]/
      [Job_resumed] grants, and no job reports more promotions than its
      accumulated grants;
    - {b resume conservation} (serve mode): pause/resume episodes
      alternate correctly — only a started job checkpoints, only a
      checkpointed job resumes, each [Job_resumed] claims exactly the
      number of pauses that happened, and no job is left checkpointed at
      end of run. Combined with per-job work conservation (whose sink
      persists across episodes), the iteration space of a preempted job is
      proven to execute exactly once across all its episodes.

    Violations are collected (default) or raised immediately ([~strict]),
    each carrying the window of records leading up to the offence. *)

type invariant =
  | Work_conservation
  | Deque_discipline
  | Promotion_policy
  | Chunk_consistency
  | Clock_sanity
  | Job_conservation
  | Budget_conservation
  | Resume_conservation

val invariant_name : invariant -> string
(** Stable kebab-case name ("work-conservation", ...). *)

type violation = {
  invariant : invariant;
  time : int;  (** virtual time of the offending record (last seen time for end-of-run checks) *)
  worker : int;  (** worker of the offending record; -1 for end-of-run checks *)
  message : string;
  window : Obs.Trace.record list;  (** recent records, oldest first, ending at the offender *)
}

exception Violation of violation
(** Raised from inside the sink in [~strict] mode. *)

type config = {
  policy : Hbc_core.Rt_config.promotion_policy;
      (** the policy the run is configured with; the sanitizer checks
          choices against it (Innermost_first runs are legal, just checked
          in the opposite direction) *)
  ac_target_polls : int;  (** AC target, input of the chunk update rule *)
}

val config_of_rt : Hbc_core.Rt_config.t -> config

type t

val create : ?strict:bool -> ?window:int -> ?max_violations:int -> config -> t
(** [strict] (default false) raises {!Violation} at the first offence
    instead of collecting. [window] (default 32) bounds the record window
    attached to violations; [max_violations] (default 100) bounds how many
    violations are retained (the count keeps growing past it). *)

val sink : t -> Obs.Trace.Sink.t
(** The sanitizer as a sink. Tee it with the run's own sink:
    [Run_request.make ~trace:(Obs.Trace.Sink.tee (Sanitizer.sink s) user_sink) ()].
    The sink captures nothing and never perturbs the run. *)

val finish : t -> unit
(** End-of-run checks: uncovered iteration ranges (work conservation) and
    tasks pushed or stolen but never executed (deque discipline). Call it
    on completed runs — and on deadlocked ones in tests, where the lost
    work is exactly what it should flag. Idempotent. *)

val violations : t -> violation list
(** Retained violations, oldest first. *)

val violation_count : t -> int
(** Total violations observed, including ones past [max_violations]. *)

val ok : t -> bool

val records_seen : t -> int

val summary : t -> string
(** One line: "sanitizer: OK (...)" or "sanitizer: N violation(s) ...",
    suitable for campaign tables and [Run_result]. *)
