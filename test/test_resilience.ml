(* The resilience layer: journal round-trips, checkpoint/resume, content-hash
   invalidation, trial watchdogs, retry/quarantine, and explicit DNF/error
   accounting in the summary statistics. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tiny = { Experiments.Harness.default_config with scale = 0.05; workers = 16 }

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let temp_journal () =
  let path = Filename.temp_file "hbc-journal" ".jsonl" in
  Sys.remove path;
  path

let with_fresh_journal ~path ~resume f =
  Experiments.Harness.clear_cache ();
  let j = Experiments.Checkpoint.create ~path ~resume in
  Experiments.Harness.set_journal (Some j);
  Fun.protect
    ~finally:(fun () ->
      Experiments.Harness.set_journal None;
      Experiments.Checkpoint.close j)
    (fun () -> f j)

(* A representative captured trace: every payload-carrying event shape the
   journal codec must round-trip. *)
let sample_trace =
  [
    { Obs.Trace.seq = 0; time = 400; worker = 1; event = Obs.Trace.Chunk_update { key = 1; chunk = 8 } };
    { Obs.Trace.seq = 1; time = 800; worker = 2; event = Obs.Trace.Chunk_update { key = 2; chunk = 16 } };
    { Obs.Trace.seq = 2; time = 4_500; worker = 1; event = Obs.Trace.Mechanism_downgrade };
    { Obs.Trace.seq = 3; time = 9_000; worker = 3; event = Obs.Trace.Mechanism_downgrade };
    { Obs.Trace.seq = 4; time = 10_000; worker = 0; event = Obs.Trace.Fault_injected (Obs.Trace.Beat_delayed 250) };
    { Obs.Trace.seq = 5; time = 12_000; worker = 0; event = Obs.Trace.Promotion { level = 1 } };
    { Obs.Trace.seq = 6; time = 13_000; worker = 0; event = Obs.Trace.Interval { t0 = 11_000; kind = "task" } };
  ]

let sample_result () =
  let metrics = Sim.Metrics.create () in
  metrics.Sim.Metrics.heartbeats_generated <- 41;
  metrics.Sim.Metrics.heartbeats_detected <- 40;
  metrics.Sim.Metrics.promotions <- 7;
  metrics.Sim.Metrics.promotions_by_level.(2) <- 5;
  Sim.Metrics.add_overhead metrics "poll" 123;
  metrics.Sim.Metrics.downgrades <- 2;
  {
    Sim.Run_result.makespan = 123_456;
    work_cycles = 1_000_000;
    fingerprint = 0.1 +. 0.2;
    dnf = false;
    termination = Sim.Run_result.Budget_exceeded { budget = 200_000; at = 123_456 };
    metrics;
    trace = sample_trace;
    sanitizer = None;
  }

(* ---------------- journal codec round-trips ---------------- *)

let roundtrip_completed () =
  let entry =
    {
      Experiments.Checkpoint.key = "abc123";
      bench = "spmv-powerlaw";
      tag = "hbc";
      scale = 0.05;
      workers = 16;
      seed = 7;
      status = Experiments.Checkpoint.Completed (sample_result ());
    }
  in
  match Experiments.Checkpoint.entry_of_json (Experiments.Checkpoint.entry_to_json entry) with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok e -> (
      check_string "key" entry.Experiments.Checkpoint.key e.Experiments.Checkpoint.key;
      check_string "bench" "spmv-powerlaw" e.Experiments.Checkpoint.bench;
      check_int "seed" 7 e.Experiments.Checkpoint.seed;
      match e.Experiments.Checkpoint.status with
      | Experiments.Checkpoint.Failed _ -> Alcotest.fail "expected Completed"
      | Experiments.Checkpoint.Completed r ->
          check_int "makespan" 123_456 r.Sim.Run_result.makespan;
          check_bool "fingerprint exact" true (r.Sim.Run_result.fingerprint = 0.1 +. 0.2);
          check_bool "termination" true
            (r.Sim.Run_result.termination
            = Sim.Run_result.Budget_exceeded { budget = 200_000; at = 123_456 });
          let m = r.Sim.Run_result.metrics in
          check_int "counter" 41 m.Sim.Metrics.heartbeats_generated;
          check_int "per-level promotions" 5 m.Sim.Metrics.promotions_by_level.(2);
          check_int "overhead kind" 123 (Sim.Metrics.overhead_of m "poll");
          check_int "downgrade counter" 2 (Sim.Metrics.downgrade_count m);
          check_bool "trace round-trips exactly" true (r.Sim.Run_result.trace = sample_trace);
          check_bool "downgrade events queryable" true
            (Obs.Trace_query.downgrades r.Sim.Run_result.trace = [ (1, 4_500); (3, 9_000) ]);
          check_bool "chunk updates queryable" true
            (Obs.Trace_query.chunk_updates r.Sim.Run_result.trace
            = [ (400, 1, 8); (800, 2, 16) ]))

let roundtrip_failed () =
  let entry =
    {
      Experiments.Checkpoint.key = "k";
      bench = "b";
      tag = "t";
      scale = 1.0;
      workers = 64;
      seed = 1;
      status =
        Experiments.Checkpoint.Failed
          (Experiments.Trial_error.Timeout "cycle budget 100 exceeded");
    }
  in
  match Experiments.Checkpoint.entry_of_json (Experiments.Checkpoint.entry_to_json entry) with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok e -> (
      match e.Experiments.Checkpoint.status with
      | Experiments.Checkpoint.Failed (Experiments.Trial_error.Timeout d) ->
          check_string "detail" "cycle budget 100 exceeded" d
      | _ -> Alcotest.fail "expected Failed Timeout")

let torn_lines_skipped () =
  let path = temp_journal () in
  let entry =
    {
      Experiments.Checkpoint.key = "k1";
      bench = "b";
      tag = "t";
      scale = 1.0;
      workers = 64;
      seed = 1;
      status = Experiments.Checkpoint.Completed (sample_result ());
    }
  in
  let oc = open_out path in
  output_string oc (Experiments.Checkpoint.entry_to_json entry ^ "\n");
  (* a torn trailing write, as left behind by kill -9 mid-record *)
  output_string oc "{\"v\":1,\"key\":\"k2\",\"ben";
  close_out oc;
  let j = Experiments.Checkpoint.create ~path ~resume:true in
  check_int "loaded" 1 (Experiments.Checkpoint.loaded j);
  check_int "skipped" 1 (Experiments.Checkpoint.skipped_lines j);
  check_bool "valid entry survives" true (Experiments.Checkpoint.find j "k1" <> None);
  Experiments.Checkpoint.close j;
  (* the compacting rewrite drops the torn line for good *)
  let j2 = Experiments.Checkpoint.create ~path ~resume:true in
  check_int "clean after rewrite" 0 (Experiments.Checkpoint.skipped_lines j2);
  check_int "still one entry" 1 (Experiments.Checkpoint.loaded j2);
  Experiments.Checkpoint.close j2;
  Sys.remove path

(* ---------------- checkpoint/resume through the harness ---------------- *)

let counting_trial config ~tag calls =
  Experiments.Harness.trial config ~bench:"synthetic" ~tag ~signature:"sig-v1" (fun () ->
      incr calls;
      {
        Sim.Run_result.makespan = 10;
        work_cycles = 100;
        fingerprint = 1.0;
        dnf = false;
        termination = Sim.Run_result.Finished;
        metrics = Sim.Metrics.create ();
        trace = [];
        sanitizer = None;
      })

let resume_skips_completed () =
  let path = temp_journal () in
  let calls = ref 0 in
  with_fresh_journal ~path ~resume:false (fun j ->
      (match counting_trial tiny ~tag:"resume" calls with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "trial failed");
      check_int "computed once" 1 !calls;
      check_int "recorded" 1 (Experiments.Checkpoint.appended j));
  (* a fresh process resuming from the journal must not recompute *)
  with_fresh_journal ~path ~resume:true (fun j ->
      check_int "loaded from disk" 1 (Experiments.Checkpoint.loaded j);
      (match counting_trial tiny ~tag:"resume" calls with
      | Ok r -> check_int "journaled makespan" 10 r.Sim.Run_result.makespan
      | Error _ -> Alcotest.fail "journaled trial failed");
      check_int "not recomputed" 1 !calls;
      check_int "served from journal" 1 (Experiments.Checkpoint.hits j));
  Sys.remove path

let config_change_invalidates () =
  let path = temp_journal () in
  let calls = ref 0 in
  with_fresh_journal ~path ~resume:false (fun _ ->
      ignore (counting_trial tiny ~tag:"inval" calls);
      check_int "computed once" 1 !calls);
  (* same journal, different seed: the content-hash key changes, so the
     stale entry is never looked up and the trial re-runs *)
  with_fresh_journal ~path ~resume:true (fun j ->
      ignore (counting_trial { tiny with seed = 99 } ~tag:"inval" calls);
      check_int "recomputed under new seed" 2 !calls;
      check_int "no journal hit" 0 (Experiments.Checkpoint.hits j));
  (* and a changed executor signature invalidates the same way *)
  with_fresh_journal ~path ~resume:true (fun _ ->
      ignore
        (Experiments.Harness.trial tiny ~bench:"synthetic" ~tag:"inval" ~signature:"sig-v2"
           (fun () ->
             incr calls;
             {
               Sim.Run_result.makespan = 10;
               work_cycles = 100;
               fingerprint = 1.0;
               dnf = false;
               termination = Sim.Run_result.Finished;
               metrics = Sim.Metrics.create ();
               trace = [];
               sanitizer = None;
             }));
      check_int "recomputed under new signature" 3 !calls);
  Sys.remove path

(* ---------------- watchdogs ---------------- *)

let budget_watchdog_times_out () =
  Experiments.Harness.clear_cache ();
  let config = { tiny with trial_budget = Some 500 } in
  let entry = Workloads.Registry.find "plus-reduce-array" in
  let o = Experiments.Harness.run_hbc config ~tag:"watchdog" entry in
  (match o.Experiments.Harness.error with
  | Some (Experiments.Trial_error.Timeout _) -> ()
  | Some e -> Alcotest.failf "expected Timeout, got %s" (Experiments.Trial_error.to_string e)
  | None -> Alcotest.fail "expected the cycle-budget watchdog to fire");
  check_string "rendered cell" "\xe2\x80\x94(timeout)"
    (Experiments.Harness.speedup_cell o);
  check_bool "quarantined" true
    (List.exists
       (fun (label, _) -> contains ~needle:"plus-reduce-array" label)
       (Experiments.Harness.quarantined ()))

let engine_budget_is_structured () =
  (* the engine raises a structured Budget_exceeded (not a livelock) *)
  let request =
    Experiments.Harness.guarded
      { tiny with trial_budget = Some 200 }
      Hbc_core.Run_request.default
  in
  let entry = Workloads.Registry.find "spmv-random" in
  let (Ir.Program.Any p) = entry.Workloads.Registry.make 0.05 in
  match
    Hbc_core.Executor.run ~request { Hbc_core.Rt_config.default with workers = 4; seed = 1 } p
  with
  | r ->
      check_bool "terminated by budget" true
        (match r.Sim.Run_result.termination with
        | Sim.Run_result.Budget_exceeded { budget = 200; _ } -> true
        | _ -> false)
  | exception e -> Alcotest.failf "expected a structured result, got %s" (Printexc.to_string e)

(* ---------------- retry and quarantine ---------------- *)

let quarantine_after_retries () =
  Experiments.Harness.clear_cache ();
  let config = { tiny with max_retries = 2; retry_backoff = 0.0 } in
  let calls = ref 0 in
  let flaky () =
    incr calls;
    failwith "synthetic crash"
  in
  (match
     Experiments.Harness.trial config ~bench:"flaky" ~tag:"t" ~signature:"s" flaky
   with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error (Experiments.Trial_error.Crash _) -> ()
  | Error e -> Alcotest.failf "expected Crash, got %s" (Experiments.Trial_error.to_string e));
  check_int "initial attempt + 2 retries" 3 !calls;
  (* quarantined: asking again must not re-run it *)
  (match Experiments.Harness.trial config ~bench:"flaky" ~tag:"t" ~signature:"s" flaky with
  | Ok _ -> Alcotest.fail "expected quarantined failure"
  | Error _ -> ());
  check_int "no further attempts" 3 !calls;
  check_bool "listed" true
    (List.exists (fun (label, _) -> label = "flaky/t") (Experiments.Harness.quarantined ()))

let transient_crash_retries_then_succeeds () =
  Experiments.Harness.clear_cache ();
  let config = { tiny with max_retries = 2; retry_backoff = 0.0 } in
  let calls = ref 0 in
  let once_flaky () =
    incr calls;
    if !calls = 1 then failwith "spurious";
    {
      Sim.Run_result.makespan = 5;
      work_cycles = 50;
      fingerprint = 2.0;
      dnf = false;
      termination = Sim.Run_result.Finished;
      metrics = Sim.Metrics.create ();
      trace = [];
      sanitizer = None;
    }
  in
  (match
     Experiments.Harness.trial config ~bench:"flaky2" ~tag:"t" ~signature:"s" once_flaky
   with
  | Ok r -> check_int "result from retry" 5 r.Sim.Run_result.makespan
  | Error e -> Alcotest.failf "retry should recover: %s" (Experiments.Trial_error.to_string e));
  check_int "exactly one retry" 2 !calls;
  check_bool "not quarantined" true (Experiments.Harness.quarantined () = [])

let deterministic_failures_fail_fast () =
  Experiments.Harness.clear_cache ();
  let config = { tiny with max_retries = 5; retry_backoff = 0.0 } in
  let calls = ref 0 in
  let timing_out () =
    incr calls;
    raise (Sim.Engine.Budget_exceeded { budget = 1; time = 2 })
  in
  (match Experiments.Harness.trial config ~bench:"slow" ~tag:"t" ~signature:"s" timing_out with
  | Error (Experiments.Trial_error.Timeout _) -> ()
  | _ -> Alcotest.fail "expected Timeout");
  check_int "no retries for deterministic failures" 1 !calls

(* ---------------- explicit DNF/error accounting ---------------- *)

let geomean_exclusion () =
  let g, excluded = Report.Stats.geomean_excluding [ Some 2.0; Some 8.0; None; None ] in
  check_bool "geomean of present" true (Float.abs (g -. 4.0) < 1e-9);
  check_int "exclusions counted" 2 excluded;
  let ok speedup =
    {
      Experiments.Harness.result =
        {
          Sim.Run_result.makespan = 10;
          work_cycles = 100;
          fingerprint = 0.0;
          dnf = false;
          termination = Sim.Run_result.Finished;
          metrics = Sim.Metrics.create ();
          trace = [];
          sanitizer = None;
        };
      speedup;
      valid = true;
      error = None;
    }
  in
  let failed = { (ok 0.0) with error = Some (Experiments.Trial_error.Timeout "t") } in
  match Experiments.Harness.geomean_row ~label:"geomean" [ [ ok 2.0; ok 8.0; failed ] ] with
  | [ label; cell ] ->
      check_string "label" "geomean" label;
      check_bool "cell renders exclusion" true (contains ~needle:"(1 excl.)" cell);
      check_bool "cell renders geomean" true (contains ~needle:"4.0" cell)
  | row -> Alcotest.failf "unexpected row arity %d" (List.length row)

let error_cells_render () =
  let base =
    {
      Sim.Run_result.makespan = 10;
      work_cycles = 100;
      fingerprint = 0.0;
      dnf = true;
      termination = Sim.Run_result.Dnf;
      metrics = Sim.Metrics.create ();
      trace = [];
      sanitizer = None;
    }
  in
  let dnf_outcome =
    { Experiments.Harness.result = base; speedup = 0.5; valid = true; error = None }
  in
  check_string "DNF cell" "DNF" (Experiments.Harness.speedup_cell dnf_outcome);
  check_bool "DNF excluded from geomeans" true
    (Experiments.Harness.speedup_opt dnf_outcome = None);
  check_string "deadlock cell" "\xe2\x80\x94(deadlock)"
    (Experiments.Trial_error.cell (Experiments.Trial_error.Deadlock "d"))

(* Serve-mode requests must never alias plain trials in the journal: each
   of the new tenant/deadline/priority/promotion-budget knobs has to reach
   the request signature. *)
let signature_covers_serve_fields () =
  let sig_of req = Hbc_core.Run_request.signature req in
  let plain = sig_of (Hbc_core.Run_request.make ()) in
  let variants =
    [
      ("tenant", Hbc_core.Run_request.make ~tenant:3 ());
      ("deadline", Hbc_core.Run_request.make ~deadline:50_000 ());
      ("priority", Hbc_core.Run_request.make ~priority:2 ());
      ("promotion budget", Hbc_core.Run_request.make ~promotion_budget:8 ());
    ]
  in
  List.iter
    (fun (name, req) ->
      check_bool (name ^ " changes the signature") true (sig_of req <> plain))
    variants;
  let sigs = plain :: List.map (fun (_, r) -> sig_of r) variants in
  check_bool "all five signatures distinct" true
    (List.length (List.sort_uniq compare sigs) = List.length sigs);
  (* equal requests still agree *)
  check_bool "signatures are stable" true
    (sig_of (Hbc_core.Run_request.make ~tenant:3 ())
    = sig_of (Hbc_core.Run_request.make ~tenant:3 ()))

let suite =
  [
    Alcotest.test_case "journal: completed round-trip" `Quick roundtrip_completed;
    Alcotest.test_case "journal: failed round-trip" `Quick roundtrip_failed;
    Alcotest.test_case "journal: torn lines skipped" `Quick torn_lines_skipped;
    Alcotest.test_case "resume skips completed trials" `Quick resume_skips_completed;
    Alcotest.test_case "config hash invalidates entries" `Quick config_change_invalidates;
    Alcotest.test_case "watchdog: cycle budget times out" `Quick budget_watchdog_times_out;
    Alcotest.test_case "watchdog: engine result structured" `Quick engine_budget_is_structured;
    Alcotest.test_case "quarantine after bounded retries" `Quick quarantine_after_retries;
    Alcotest.test_case "transient crash retried to success" `Quick transient_crash_retries_then_succeeds;
    Alcotest.test_case "deterministic failures fail fast" `Quick deterministic_failures_fail_fast;
    Alcotest.test_case "geomean excludes failures explicitly" `Quick geomean_exclusion;
    Alcotest.test_case "error cells render explicitly" `Quick error_cells_render;
    Alcotest.test_case "signature covers serve fields" `Quick signature_covers_serve_fields;
  ]
