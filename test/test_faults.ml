(* The fault layer's cross-cutting contract: a fault plan may change
   performance, never results. Property-style differential tests drive every
   registry workload through random seeded plans under both interrupt
   mechanisms and compare against the sequential reference; targeted tests
   pin the zero-plan bit-identity guarantee, the starvation watchdog, the
   steal backoff, stall injection, and schedule determinism. *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let workers = 8

let rt_with ?(mechanism = Hbc_core.Rt_config.Software_polling) ?chunk () =
  {
    Hbc_core.Rt_config.default with
    workers;
    mechanism;
    chunk = (match chunk with Some c -> Hbc_core.Compiled.Static c | None -> Hbc_core.Compiled.Adaptive);
  }

(* Per-run knobs (fault plan, DNF cap, trace sink) travel in the request. *)
let run_entry ?plan ?max_cycles ?trace entry ~scale rt =
  let request = Hbc_core.Run_request.make ?fault_plan:plan ?max_cycles ?trace () in
  let (Ir.Program.Any p) = entry.Workloads.Registry.make scale in
  Hbc_core.Executor.run ~request rt p

(* Capture only the watchdog's downgrade events. *)
let downgrade_sink () =
  Obs.Trace.Sink.stream
    ~keep:(function Obs.Trace.Mechanism_downgrade -> true | _ -> false)
    ()

let baseline entry ~scale =
  let (Ir.Program.Any p) = entry.Workloads.Registry.make scale in
  Baselines.Serial_exec.run_program p

(* Any registry workload, any random plan, either interrupt mechanism:
   finishes under a generous virtual-time cap with the sequential answer. *)
let random_plans_never_change_results () =
  let rng = Sim.Sim_rng.create 0xFA17 in
  let plans = List.init 5 (fun _ -> Sim.Fault_plan.random rng) in
  let scale = 0.04 in
  List.iter
    (fun entry ->
      let seq = baseline entry ~scale in
      let cap = Some (30 * seq.Sim.Run_result.work_cycles) in
      List.iteri
        (fun i plan ->
          List.iter
            (fun mechanism ->
              let rt = rt_with ~mechanism ~chunk:entry.Workloads.Registry.tpal_chunk () in
              let r = run_entry ~plan ?max_cycles:cap entry ~scale rt in
              let tag =
                Printf.sprintf "%s/plan%d/%s" entry.Workloads.Registry.name i
                  (match mechanism with
                  | Hbc_core.Rt_config.Interrupt_kernel_module -> "km"
                  | Hbc_core.Rt_config.Interrupt_ping_thread -> "ping"
                  | Hbc_core.Rt_config.Software_polling -> "poll")
              in
              check_bool (tag ^ " finished") false r.Sim.Run_result.dnf;
              check_bool (tag ^ " output = sequential") true
                (Sim.Run_result.fingerprints_close seq r))
            [ Hbc_core.Rt_config.Interrupt_kernel_module; Hbc_core.Rt_config.Interrupt_ping_thread ])
        plans)
    Workloads.Registry.all

(* [fault_plan = None] and [Some Fault_plan.none] are the same run, bit for
   bit: same makespan, same schedule-sensitive counters, nothing injected. *)
let zero_plan_is_bit_identical () =
  let entry = Workloads.Registry.find "spmv-powerlaw" in
  let scale = 0.05 in
  List.iter
    (fun (label, mechanism, chunk) ->
      let bare = run_entry entry ~scale (rt_with ~mechanism ?chunk ()) in
      let zero = run_entry ~plan:Sim.Fault_plan.none entry ~scale (rt_with ~mechanism ?chunk ()) in
      let mb = bare.Sim.Run_result.metrics and mz = zero.Sim.Run_result.metrics in
      check_int (label ^ " makespan") bare.Sim.Run_result.makespan zero.Sim.Run_result.makespan;
      Alcotest.(check (float 0.0))
        (label ^ " fingerprint") bare.Sim.Run_result.fingerprint zero.Sim.Run_result.fingerprint;
      check_int (label ^ " promotions") mb.Sim.Metrics.promotions mz.Sim.Metrics.promotions;
      check_int (label ^ " steals") mb.Sim.Metrics.steals mz.Sim.Metrics.steals;
      check_int (label ^ " steal attempts") mb.Sim.Metrics.steal_attempts
        mz.Sim.Metrics.steal_attempts;
      check_int (label ^ " beats generated") mb.Sim.Metrics.heartbeats_generated
        mz.Sim.Metrics.heartbeats_generated;
      check_int (label ^ " beats detected") mb.Sim.Metrics.heartbeats_detected
        mz.Sim.Metrics.heartbeats_detected;
      check_int (label ^ " beats missed") mb.Sim.Metrics.heartbeats_missed
        mz.Sim.Metrics.heartbeats_missed;
      check_int (label ^ " overhead cycles") mb.Sim.Metrics.overhead_cycles
        mz.Sim.Metrics.overhead_cycles;
      check_int (label ^ " nothing injected") 0 (Sim.Metrics.faults_injected mz);
      check_int (label ^ " no downgrades") 0 (Sim.Metrics.downgrade_count mz))
    [
      ("polling", Hbc_core.Rt_config.Software_polling, None);
      ("km", Hbc_core.Rt_config.Interrupt_kernel_module, Some 128);
      ("ping", Hbc_core.Rt_config.Interrupt_ping_thread, Some 128);
    ]

(* Near-total beat loss starves interrupt-mode workers; the watchdog must
   downgrade at least one to software polling, and the run still finishes
   with the right answer. *)
let watchdog_downgrades_starved_workers () =
  let entry = Workloads.Registry.find "spmv-powerlaw" in
  let scale = 0.05 in
  let seq = baseline entry ~scale in
  let plan = { Sim.Fault_plan.none with Sim.Fault_plan.seed = 7; beat_drop_prob = 0.9 } in
  let r =
    run_entry ~plan
      ~max_cycles:(30 * seq.Sim.Run_result.work_cycles)
      ~trace:(downgrade_sink ()) entry ~scale
      (rt_with ~mechanism:Hbc_core.Rt_config.Interrupt_kernel_module ~chunk:128 ())
  in
  check_bool "finished" false r.Sim.Run_result.dnf;
  check_bool "output = sequential" true (Sim.Run_result.fingerprints_close seq r);
  check_bool "watchdog fired" true (Sim.Run_result.downgrades r > 0);
  check_bool "degraded flag" true (Sim.Run_result.degraded r);
  (* downgrade events are (worker, time) with valid workers; the counter and
     the trace must agree, both fed by the same emission *)
  let downgrades = Obs.Trace_query.downgrades r.Sim.Run_result.trace in
  check_int "counter = trace" (Sim.Run_result.downgrades r) (List.length downgrades);
  List.iter
    (fun (w, t) ->
      check_bool "worker in range" true (w >= 0 && w < workers);
      check_bool "time positive" true (t > 0))
    downgrades

(* Forced steal-failure bursts engage the bounded exponential backoff
   instead of the old immediate park: failures are counted and backoff
   cycles attributed, with the result unchanged. *)
let steal_faults_engage_backoff () =
  let entry = Workloads.Registry.find "mandelbrot" in
  let scale = 0.05 in
  let seq = baseline entry ~scale in
  let plan =
    {
      Sim.Fault_plan.none with
      Sim.Fault_plan.seed = 11;
      steal_fail_prob = 0.5;
      steal_fail_burst = 3;
    }
  in
  let r =
    run_entry ~plan ~max_cycles:(30 * seq.Sim.Run_result.work_cycles) entry ~scale (rt_with ())
  in
  check_bool "finished" false r.Sim.Run_result.dnf;
  check_bool "output = sequential" true (Sim.Run_result.fingerprints_close seq r);
  check_bool "steal failures injected" true (r.Sim.Run_result.metrics.Sim.Metrics.faults_steals_failed > 0);
  check_bool "backoff cycles attributed" true
    (Sim.Metrics.overhead_of r.Sim.Run_result.metrics "idle-backoff" > 0)

(* Injected stalls surface as attributed overhead and slow the run down
   without perturbing the output. *)
let stalls_are_attributed () =
  let entry = Workloads.Registry.find "plus-reduce-array" in
  let scale = 0.05 in
  let seq = baseline entry ~scale in
  let plan =
    { Sim.Fault_plan.none with Sim.Fault_plan.seed = 3; stall_prob = 0.2; stall_cycles = 5_000 }
  in
  let r =
    run_entry ~plan ~max_cycles:(30 * seq.Sim.Run_result.work_cycles) entry ~scale (rt_with ())
  in
  check_bool "finished" false r.Sim.Run_result.dnf;
  check_bool "output = sequential" true (Sim.Run_result.fingerprints_close seq r);
  let m = r.Sim.Run_result.metrics in
  check_bool "stalls injected" true (m.Sim.Metrics.faults_stalls > 0);
  check_bool "stall cycles booked" true
    (m.Sim.Metrics.faults_stall_cycles >= m.Sim.Metrics.faults_stalls);
  check_bool "stall overhead attributed" true (Sim.Metrics.overhead_of m "fault-stall" > 0)

(* Identical plans reproduce identical fault schedules: the whole run —
   makespan, injections, downgrades — is a pure function of the config. *)
let fault_schedules_are_deterministic () =
  let entry = Workloads.Registry.find "spmv-powerlaw" in
  let scale = 0.05 in
  let plan =
    {
      Sim.Fault_plan.none with
      Sim.Fault_plan.seed = 21;
      beat_drop_prob = 0.4;
      beat_jitter = 2_000;
      steal_fail_prob = 0.2;
      steal_fail_burst = 2;
      stall_prob = 0.01;
      stall_cycles = 3_000;
    }
  in
  let go () =
    run_entry ~plan ~trace:(downgrade_sink ()) entry ~scale
      (rt_with ~mechanism:Hbc_core.Rt_config.Interrupt_ping_thread ~chunk:128 ())
  in
  let a = go () and b = go () in
  check_int "same makespan" a.Sim.Run_result.makespan b.Sim.Run_result.makespan;
  check_int "same injections"
    (Sim.Run_result.faults_injected a)
    (Sim.Run_result.faults_injected b);
  Alcotest.(check (list (pair int int)))
    "same downgrade schedule"
    (Obs.Trace_query.downgrades a.Sim.Run_result.trace)
    (Obs.Trace_query.downgrades b.Sim.Run_result.trace)

let suite =
  [
    Alcotest.test_case "random plans never change results" `Slow random_plans_never_change_results;
    Alcotest.test_case "zero plan is bit-identical" `Quick zero_plan_is_bit_identical;
    Alcotest.test_case "watchdog downgrades starved workers" `Quick watchdog_downgrades_starved_workers;
    Alcotest.test_case "steal faults engage backoff" `Quick steal_faults_engage_backoff;
    Alcotest.test_case "stalls are attributed" `Quick stalls_are_attributed;
    Alcotest.test_case "fault schedules deterministic" `Quick fault_schedules_are_deterministic;
  ]
