let () =
  Alcotest.run "hbc"
    [
      ("sim", Test_sim.suite);
      ("event_queue", Test_event_queue.suite);
      ("ir", Test_ir.suite);
      ("compiler", Test_compiler.suite);
      ("linker", Test_linker.suite);
      ("heartbeat", Test_heartbeat.suite);
      ("runtime", Test_runtime.suite);
      ("faults", Test_faults.suite);
      ("trace", Test_trace.suite);
      ("baselines", Test_baselines.suite);
      ("workloads", Test_workloads.suite);
      ("semantics", Test_semantics.suite);
      ("io", Test_io.suite);
      ("fork_join", Test_fork_join.suite);
      ("parallel", Test_parallel.suite);
      ("sched", Test_sched.suite);
      ("report", Test_report.suite);
      ("experiments", Test_experiments.suite);
      ("resilience", Test_resilience.suite);
      ("benchgate", Test_benchgate.suite);
      ("sanitizer", Test_sanitizer.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("native_faults", Test_native_faults.suite);
      ("server", Test_server.suite);
    ]
