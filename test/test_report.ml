(* Tests for tables, charts, stats, and the experiment harness plumbing. *)

let check_bool = Alcotest.(check bool)

let geomean_known () =
  Alcotest.(check (float 1e-9)) "geomean" 4.0 (Report.Stats.geomean [ 2.0; 8.0 ]);
  Alcotest.(check (float 1e-9)) "singleton" 5.0 (Report.Stats.geomean [ 5.0 ]);
  Alcotest.(check (float 1e-9)) "ignores nonpositive" 4.0 (Report.Stats.geomean [ 2.0; 8.0; 0.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Report.Stats.geomean [])

let median_known () =
  Alcotest.(check (float 1e-9)) "odd" 3.0 (Report.Stats.median [ 5.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (Report.Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let table_render () =
  let t = Report.Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Report.Table.add_row t [ "x"; "1" ];
  Report.Table.add_separator t;
  Report.Table.add_row t [ "yy" ];
  let s = Report.Table.render t in
  check_bool "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  check_bool "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "| x  | 1  |"));
  Alcotest.(check int) "rows accessor" 2 (List.length (Report.Table.rows t))

let chart_render () =
  let s = Report.Ascii_chart.bars ~title:"C" [ ("a", 2.0); ("b", 4.0) ] in
  check_bool "bars scale" true
    (let lines = String.split_on_char '\n' s in
     let count_hashes l = String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 l in
     match lines with
     | _ :: la :: lb :: _ -> count_hashes lb = 2 * count_hashes la
     | _ -> false)

let cells () =
  Alcotest.(check string) "float" "3.1" (Report.Table.cell_f 3.14);
  Alcotest.(check string) "pct" "12.50%" (Report.Table.cell_pct 12.5);
  Alcotest.(check string) "int" "7" (Report.Table.cell_i 7)

let run_result_helpers () =
  let mk work makespan =
    {
      Sim.Run_result.makespan;
      work_cycles = work;
      fingerprint = 1.0;
      dnf = false;
      termination = Sim.Run_result.Finished;
      metrics = Sim.Metrics.create ();
      trace = [];
      sanitizer = None;
    }
  in
  let base = mk 1000 1000 in
  Alcotest.(check (float 1e-9)) "speedup" 4.0 (Sim.Run_result.speedup ~baseline:base (mk 1000 250));
  Alcotest.(check (float 1e-9)) "dnf = 0" 0.0
    (Sim.Run_result.speedup ~baseline:base { (mk 1000 250) with Sim.Run_result.dnf = true });
  Alcotest.(check (float 1e-9)) "overhead pct" 25.0 (Sim.Run_result.overhead_pct (mk 1000 1250));
  check_bool "fingerprints close" true
    (Sim.Run_result.fingerprints_close (mk 1 1) { (mk 1 1) with Sim.Run_result.fingerprint = 1.0000000001 })

(* Nearest-rank percentile: always an observed value, with the empty,
   singleton, duplicate, and p0/p100 boundary cases pinned — the server's
   sojourn tails (and the perf gate comparing them exactly) depend on
   these semantics. *)
let percentile_edge_cases () =
  let p q xs = Report.Stats.percentile q xs in
  let eq name = Alcotest.(check (float 0.0)) name in
  eq "empty sample is 0" 0.0 (p 50.0 []);
  eq "singleton p0" 7.0 (p 0.0 [ 7.0 ]);
  eq "singleton p50" 7.0 (p 50.0 [ 7.0 ]);
  eq "singleton p100" 7.0 (p 100.0 [ 7.0 ]);
  let xs = [ 4.0; 1.0; 3.0; 2.0 ] in
  eq "p0 clamps to the minimum" 1.0 (p 0.0 xs);
  eq "p100 is the maximum" 4.0 (p 100.0 xs);
  eq "p25 nearest-rank" 1.0 (p 25.0 xs);
  eq "p50 nearest-rank (no interpolation)" 2.0 (p 50.0 xs);
  eq "p51 rounds up to the next rank" 3.0 (p 51.0 xs);
  let dups = [ 5.0; 5.0; 1.0; 5.0 ] in
  eq "duplicates p25" 1.0 (p 25.0 dups);
  eq "duplicates p75" 5.0 (p 75.0 dups);
  List.iter
    (fun q -> Alcotest.(check bool) "always an observed value" true (List.mem (p q xs) xs))
    [ 0.0; 10.0; 33.0; 66.0; 99.0; 100.0 ]

let suite =
  [
    Alcotest.test_case "stats: geomean" `Quick geomean_known;
    Alcotest.test_case "stats: median" `Quick median_known;
    Alcotest.test_case "stats: percentile edge cases" `Quick percentile_edge_cases;
    Alcotest.test_case "table: render" `Quick table_render;
    Alcotest.test_case "chart: render" `Quick chart_render;
    Alcotest.test_case "table: cells" `Quick cells;
    Alcotest.test_case "run result helpers" `Quick run_result_helpers;
  ]
