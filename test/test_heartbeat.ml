(* Direct unit tests for the heartbeat signaling mechanisms (the executor
   tests cover them end-to-end; these pin their detection semantics). *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let interval = Hbc_core.Rt_config.default.Hbc_core.Rt_config.cost.Sim.Cost_model.heartbeat_interval

let with_worker cfg f =
  (* One simulated worker driving checks at chosen times. *)
  let eng = Sim.Engine.create ~num_workers:1 () in
  let metrics = Sim.Metrics.create () in
  let hb = Hbc_core.Heartbeat.create cfg eng metrics in
  Hbc_core.Heartbeat.start hb;
  Sim.Engine.run eng (fun _ ->
      Hbc_core.Heartbeat.set_busy hb ~worker:0 true;
      f eng hb metrics;
      Hbc_core.Heartbeat.set_busy hb ~worker:0 false;
      Hbc_core.Heartbeat.stop hb);
  metrics

let polling_detects_interval_boundary () =
  let m =
    with_worker Hbc_core.Rt_config.default (fun eng hb _ ->
        check_int "poll costs 50" 50 (Hbc_core.Heartbeat.poll_cost hb ~worker:0);
        (* before the boundary: nothing *)
        Sim.Engine.advance eng (interval / 2);
        check_bool "no beat yet" false (Hbc_core.Heartbeat.consume hb ~worker:0 ~count_poll:true);
        (* crossing one boundary: exactly one detection *)
        Sim.Engine.advance eng interval;
        check_bool "beat" true (Hbc_core.Heartbeat.consume hb ~worker:0 ~count_poll:true);
        check_bool "consumed" false (Hbc_core.Heartbeat.consume hb ~worker:0 ~count_poll:true))
  in
  check_int "polls counted" 3 m.Sim.Metrics.polls;
  check_int "detected" 1 m.Sim.Metrics.heartbeats_detected;
  check_int "generated" 1 m.Sim.Metrics.heartbeats_generated

let polling_counts_missed_gaps () =
  let m =
    with_worker Hbc_core.Rt_config.default (fun eng hb _ ->
        (* a long silence spanning 5 intervals collapses into one detection
           and 4 missed beats *)
        Sim.Engine.advance eng (5 * interval);
        check_bool "late beat" true (Hbc_core.Heartbeat.consume hb ~worker:0 ~count_poll:true))
  in
  check_int "generated 5" 5 m.Sim.Metrics.heartbeats_generated;
  check_int "detected 1" 1 m.Sim.Metrics.heartbeats_detected;
  check_int "missed 4" 4 m.Sim.Metrics.heartbeats_missed

let set_busy_resets_polling_baseline () =
  let m =
    with_worker Hbc_core.Rt_config.default (fun eng hb _ ->
        Hbc_core.Heartbeat.set_busy hb ~worker:0 false;
        (* idle across many intervals *)
        Sim.Engine.advance eng (10 * interval);
        Hbc_core.Heartbeat.set_busy hb ~worker:0 true;
        (* becoming busy must not surface the idle backlog as missed beats *)
        Sim.Engine.advance eng 100;
        check_bool "no spurious beat" false
          (Hbc_core.Heartbeat.consume hb ~worker:0 ~count_poll:true))
  in
  check_int "no misses charged" 0 m.Sim.Metrics.heartbeats_missed

let kernel_module_pending_and_missed () =
  let m =
    with_worker Hbc_core.Rt_config.hbc_kernel_module (fun eng hb _ ->
        check_int "no poll cost under interrupts" 0 (Hbc_core.Heartbeat.poll_cost hb ~worker:0);
        (* the broadcast fires while we compute; the flag is consumed at the
           next check and charges the delivery cost *)
        Sim.Engine.advance eng (interval + 10);
        let t0 = Sim.Engine.now eng in
        check_bool "pending beat taken" true
          (Hbc_core.Heartbeat.consume hb ~worker:0 ~count_poll:false);
        check_bool "delivery cost charged" true (Sim.Engine.now eng > t0);
        (* ignoring two further beats: the second overwrite counts missed *)
        Sim.Engine.advance eng (2 * interval);
        check_bool "still one pending" true
          (Hbc_core.Heartbeat.consume hb ~worker:0 ~count_poll:false))
  in
  check_bool "some generated" true (m.Sim.Metrics.heartbeats_generated >= 3);
  check_int "overwritten beat missed" 1 m.Sim.Metrics.heartbeats_missed;
  check_bool "interrupt cost attributed" true (Sim.Metrics.overhead_of m "interrupt" > 0)

let ping_thread_stretch_accounting () =
  (* With one busy worker the ping thread keeps up; its delivery is late by
     one send slot but no beats are lost. *)
  let m =
    with_worker Hbc_core.Rt_config.hbc_ping_thread (fun eng hb _ ->
        Sim.Engine.advance eng (interval + 2_000);
        check_bool "delivered" true (Hbc_core.Heartbeat.consume hb ~worker:0 ~count_poll:false))
  in
  check_int "no misses with one worker" 0 m.Sim.Metrics.heartbeats_missed

let stop_cancels_beats () =
  let eng = Sim.Engine.create ~num_workers:1 () in
  let metrics = Sim.Metrics.create () in
  let hb = Hbc_core.Heartbeat.create Hbc_core.Rt_config.hbc_kernel_module eng metrics in
  Hbc_core.Heartbeat.start hb;
  Sim.Engine.run eng (fun _ ->
      Hbc_core.Heartbeat.set_busy hb ~worker:0 true;
      Sim.Engine.advance eng (2 * interval);
      Hbc_core.Heartbeat.stop hb;
      let before = metrics.Sim.Metrics.heartbeats_generated in
      Sim.Engine.advance eng (5 * interval);
      check_int "no beats after stop" before metrics.Sim.Metrics.heartbeats_generated)

let suite =
  [
    Alcotest.test_case "polling: boundary detection" `Quick polling_detects_interval_boundary;
    Alcotest.test_case "polling: missed gaps" `Quick polling_counts_missed_gaps;
    Alcotest.test_case "polling: busy baseline reset" `Quick set_busy_resets_polling_baseline;
    Alcotest.test_case "kernel module: pending/missed" `Quick kernel_module_pending_and_missed;
    Alcotest.test_case "ping thread: single-worker delivery" `Quick ping_thread_stretch_accounting;
    Alcotest.test_case "stop cancels timers" `Quick stop_cancels_beats;
  ]
