(* Smoke tests over the figure harness at a tiny scale: every figure renders
   without validation failures and carries the rows it promises. *)

let check_bool = Alcotest.(check bool)

let tiny = { Experiments.Harness.default_config with scale = 0.05; workers = 16 }

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let renders_with_rows id needles () =
  Experiments.Harness.clear_cache ();
  let f = Experiments.Run_all.find id in
  let out = Experiments.Run_all.render_one tiny f in
  check_bool "no validation failures" true (Experiments.Harness.validation_failures () = []);
  List.iter
    (fun needle -> check_bool (Printf.sprintf "mentions %s" needle) true (contains ~needle out))
    needles

let harness_caching () =
  Experiments.Harness.clear_cache ();
  let entry = Workloads.Registry.find "plus-reduce-array" in
  let a = Experiments.Harness.baseline tiny entry in
  let b = Experiments.Harness.baseline tiny entry in
  check_bool "cached result reused" true (a == b)

let harness_speedup_sane () =
  Experiments.Harness.clear_cache ();
  let entry = Workloads.Registry.find "spmv-powerlaw" in
  let o = Experiments.Harness.run_hbc tiny entry in
  check_bool "valid" true o.Experiments.Harness.valid;
  check_bool "speedup in (1, 16]" true
    (o.Experiments.Harness.speedup > 1.0 && o.Experiments.Harness.speedup <= 16.5)

let figure_ids () =
  Alcotest.(check (list string))
    "all figures present"
    [ "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "fig15"; "fig16"; "fault-sweep"; "serve-bench" ]
    (List.map (fun f -> f.Experiments.Figure.id) Experiments.Run_all.figures)

let suite =
  [
    Alcotest.test_case "figure registry" `Quick figure_ids;
    Alcotest.test_case "harness: caching" `Quick harness_caching;
    Alcotest.test_case "harness: hbc outcome" `Quick harness_speedup_sane;
    Alcotest.test_case "fig5 renders" `Slow (renders_with_rows "fig5" [ "nesting level"; "mandelbulb" ]);
    Alcotest.test_case "fig10 renders" `Slow (renders_with_rows "fig10" [ "1024"; "input 1" ]);
    Alcotest.test_case "fig12 renders" `Slow (renders_with_rows "fig12" [ "powerlaw-reverse"; "avg AC chunk" ]);
    Alcotest.test_case "fig15 renders" `Slow (renders_with_rows "fig15" [ "all DOALL" ]);
    Alcotest.test_case "fig13 renders" `Slow (renders_with_rows "fig13" [ "target 4"; "srad" ]);
    Alcotest.test_case "fig14 renders" `Slow (renders_with_rows "fig14" [ "chunk 32"; "mandelbulb" ]);
  ]
