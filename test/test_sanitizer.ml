(* Scheduler-invariant sanitizer, adversarial fuzzer, and the trace-sink /
   deque plumbing they lean on. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Tee sink composition.                                               *)
(* ------------------------------------------------------------------ *)

let emit sink ~time ~worker ev = Obs.Trace.Sink.emit sink ~time ~worker ev

(* Both branches of a tee count their own drops; the tee reports the sum. *)
let tee_dropped_sum () =
  let a = Obs.Trace.Sink.ring ~workers:1 ~capacity:2 () in
  let b = Obs.Trace.Sink.ring ~workers:1 ~capacity:4 () in
  let t = Obs.Trace.Sink.tee a b in
  for i = 1 to 10 do
    emit t ~time:i ~worker:0 Obs.Trace.Poll
  done;
  check Alcotest.int "left drops" 8 (Obs.Trace.Sink.dropped a);
  check Alcotest.int "right drops" 6 (Obs.Trace.Sink.dropped b);
  check Alcotest.int "tee sums both" 14 (Obs.Trace.Sink.dropped t)

(* A tee whose branches keep disjoint event sets must still return its
   captured records in record-time order, not branch-concatenation order. *)
let tee_captured_order () =
  let polls = Obs.Trace.Sink.stream ~keep:(function Obs.Trace.Poll -> true | _ -> false) () in
  let steals =
    Obs.Trace.Sink.stream ~keep:(function Obs.Trace.Steal_attempt -> true | _ -> false) ()
  in
  let t = Obs.Trace.Sink.tee polls steals in
  emit t ~time:1 ~worker:0 Obs.Trace.Poll;
  emit t ~time:2 ~worker:0 Obs.Trace.Steal_attempt;
  emit t ~time:3 ~worker:0 Obs.Trace.Poll;
  emit t ~time:4 ~worker:0 Obs.Trace.Steal_attempt;
  let times = List.map (fun r -> r.Obs.Trace.time) (Obs.Trace.Sink.captured t) in
  check Alcotest.(list int) "chronological merge" [ 1; 2; 3; 4 ] times

(* ------------------------------------------------------------------ *)
(* Run_request signature.                                              *)
(* ------------------------------------------------------------------ *)

let signature_covers_sanitizer_bits () =
  let plain = Hbc_core.Run_request.signature (Hbc_core.Run_request.make ()) in
  let sanitized = Hbc_core.Run_request.signature (Hbc_core.Run_request.make ~sanitize:true ()) in
  let fuzzed =
    Hbc_core.Run_request.signature (Hbc_core.Run_request.make ~fuzz_case:"deadbeef" ())
  in
  Alcotest.(check bool) "sanitize changes signature" true (plain <> sanitized);
  Alcotest.(check bool) "fuzz case changes signature" true (plain <> fuzzed);
  Alcotest.(check bool) "sanitize and fuzz differ" true (sanitized <> fuzzed)

(* ------------------------------------------------------------------ *)
(* Deque edge cases.                                                   *)
(* ------------------------------------------------------------------ *)

let deque_singleton_steal () =
  let d = Sim.Deque.create () in
  Sim.Deque.push_bottom d 7;
  check Alcotest.(option int) "thief takes the only element" (Some 7) (Sim.Deque.steal d);
  check Alcotest.(option int) "owner then sees empty" None (Sim.Deque.pop_bottom d);
  check Alcotest.bool "empty" true (Sim.Deque.is_empty d)

let deque_steal_races_bottom_pop () =
  let d = Sim.Deque.create () in
  Sim.Deque.push_bottom d 1;
  Sim.Deque.push_bottom d 2;
  (* Thief and owner target opposite ends: the thief gets the oldest, the
     owner the newest, and neither sees the other's element. *)
  check Alcotest.(option int) "thief takes top (oldest)" (Some 1) (Sim.Deque.steal d);
  check Alcotest.(option int) "owner takes bottom (newest)" (Some 2) (Sim.Deque.pop_bottom d);
  check Alcotest.(option int) "nothing left to steal" None (Sim.Deque.steal d)

(* A failed steal attempt (fault-injected CAS loss) must leave the deque
   observably unchanged: same length, same order, same bottom. *)
let deque_state_after_failed_steal () =
  let d = Sim.Deque.create () in
  List.iter (Sim.Deque.push_bottom d) [ 1; 2; 3 ];
  let before = Sim.Deque.to_list d in
  (* The simulator models a failed steal as "no element removed": the fault
     layer simply never calls steal. The discipline to preserve is that
     subsequent operations behave as if the attempt never happened. *)
  check Alcotest.(list int) "order top->bottom" [ 1; 2; 3 ] before;
  check Alcotest.(option int) "bottom unchanged" (Some 3) (Sim.Deque.peek_bottom d);
  check Alcotest.(option int) "steal still sees oldest" (Some 1) (Sim.Deque.steal d);
  check Alcotest.(option int) "owner pop unaffected" (Some 3) (Sim.Deque.pop_bottom d);
  check Alcotest.(list int) "remaining element" [ 2 ] (Sim.Deque.to_list d)

(* ------------------------------------------------------------------ *)
(* Sanitized executor runs.                                            *)
(* ------------------------------------------------------------------ *)

let run_sanitized ?bug ?(workers = 4) ?(scale = 0.03) name =
  let entry = Workloads.Registry.find name in
  let (Ir.Program.Any p) = entry.Workloads.Registry.make scale in
  let seq = Baselines.Serial_exec.run_program p in
  let cap = (100 * seq.Sim.Run_result.work_cycles) + 10_000_000 in
  let rt = { Hbc_core.Rt_config.default with workers } in
  let san = Sanitizer.Checker.create (Sanitizer.Checker.config_of_rt rt) in
  let request =
    Hbc_core.Run_request.make ~max_cycles:cap ~trace:(Sanitizer.Checker.sink san) ~sanitize:true
      ()
  in
  Hbc_core.Executor.set_seeded_bug bug;
  let result =
    Fun.protect
      ~finally:(fun () -> Hbc_core.Executor.set_seeded_bug None)
      (fun () ->
        try Ok (Hbc_core.Executor.run ~request rt p) with e -> Error (Printexc.to_string e))
  in
  Sanitizer.Checker.finish san;
  (san, result)

let has_invariant san inv =
  List.exists
    (fun (v : Sanitizer.Checker.violation) -> v.Sanitizer.Checker.invariant = inv)
    (Sanitizer.Checker.violations san)

(* Seeded bug 1: a leftover task pushed twice must surface as a
   work-conservation overlap (some iterations execute twice). *)
let catches_duplicate_leftover () =
  let san, _ =
    run_sanitized ~bug:Hbc_core.Executor.Duplicate_leftover "spmv-powerlaw"
  in
  Alcotest.(check bool) "violations found" false (Sanitizer.Checker.ok san);
  Alcotest.(check bool) "work conservation flagged" true
    (has_invariant san Sanitizer.Checker.Work_conservation)

(* Seeded bug 2: a stolen task dropped on the floor is both a lost
   iteration range (work conservation) and a taken-but-never-executed task
   (deque discipline); the run itself cannot finish. *)
let catches_lost_stolen_task () =
  let san, result =
    run_sanitized ~bug:Hbc_core.Executor.Lose_stolen_task "spmv-powerlaw"
  in
  (match result with
  | Ok r -> Alcotest.(check bool) "run did not finish" true r.Sim.Run_result.dnf
  | Error _ -> (* a deadlock raise is an equally valid outcome *) ());
  Alcotest.(check bool) "violations found" false (Sanitizer.Checker.ok san);
  Alcotest.(check bool) "lost task flagged" true
    (has_invariant san Sanitizer.Checker.Deque_discipline)

(* Seeded bug 3: promoting the innermost loop under the outer-loop-first
   policy is flagged per promotion, while results stay correct. *)
let catches_inner_promotion () =
  let san, result =
    run_sanitized ~bug:Hbc_core.Executor.Promote_innermost "spmv-powerlaw"
  in
  (match result with
  | Ok r -> Alcotest.(check bool) "run still finishes" false r.Sim.Run_result.dnf
  | Error e -> Alcotest.failf "run crashed: %s" e);
  Alcotest.(check bool) "violations found" false (Sanitizer.Checker.ok san);
  Alcotest.(check bool) "policy violation flagged" true
    (has_invariant san Sanitizer.Checker.Promotion_policy)

(* The sanitizer is an observer: enabling it must not change one byte of
   the result, at any worker count, and must report zero violations on the
   real scheduler. *)
let clean_run_zero_violations_and_identical () =
  List.iter
    (fun workers ->
      let entry = Workloads.Registry.find "spmv-powerlaw" in
      let (Ir.Program.Any p) = entry.Workloads.Registry.make 0.03 in
      let rt = { Hbc_core.Rt_config.default with workers } in
      let plain = Hbc_core.Executor.run rt p in
      let (Ir.Program.Any p2) = entry.Workloads.Registry.make 0.03 in
      let san = Sanitizer.Checker.create (Sanitizer.Checker.config_of_rt rt) in
      let request =
        Hbc_core.Run_request.make ~trace:(Sanitizer.Checker.sink san) ~sanitize:true ()
      in
      let sanitized = Hbc_core.Executor.run ~request rt p2 in
      Sanitizer.Checker.finish san;
      let tag = Printf.sprintf "P=%d" workers in
      Alcotest.(check bool) (tag ^ " zero violations") true (Sanitizer.Checker.ok san);
      check Alcotest.int (tag ^ " makespan identical") plain.Sim.Run_result.makespan
        sanitized.Sim.Run_result.makespan;
      Alcotest.(check bool)
        (tag ^ " fingerprint identical") true
        (Float.equal plain.Sim.Run_result.fingerprint sanitized.Sim.Run_result.fingerprint);
      Alcotest.(check (list (pair string int)))
        (tag ^ " counters identical")
        (Sim.Metrics.counters plain.Sim.Run_result.metrics)
        (Sim.Metrics.counters sanitized.Sim.Run_result.metrics))
    [ 1; 4; 16 ]

(* ------------------------------------------------------------------ *)
(* Fuzzer.                                                             *)
(* ------------------------------------------------------------------ *)

let fuzz_generation_deterministic () =
  let hashes seed =
    let rng = Sim.Sim_rng.create seed in
    List.init 5 (fun _ -> Sanitizer.Fuzz.case_hash (Sanitizer.Fuzz.gen rng))
  in
  check Alcotest.(list string) "same seed, same cases" (hashes 11) (hashes 11);
  Alcotest.(check bool) "different seed, different cases" true (hashes 11 <> hashes 12)

let fuzz_clean_cases_pass () =
  let rng = Sim.Sim_rng.create 5 in
  for _ = 1 to 3 do
    let c = Sanitizer.Fuzz.gen rng in
    let o = Sanitizer.Fuzz.run_case c in
    match o.Sanitizer.Fuzz.failure with
    | None -> ()
    | Some f ->
        Alcotest.failf "case %s failed: %s" c.Sanitizer.Fuzz.workload
          (Sanitizer.Fuzz.failure_describe f)
  done

let forced_case bug =
  {
    Sanitizer.Fuzz.seed = 99;
    workload = "spmv-powerlaw";
    scale = 0.03;
    workers = 4;
    mechanism = Hbc_core.Rt_config.Software_polling;
    chunk = Hbc_core.Compiled.Adaptive;
    policy = Hbc_core.Rt_config.Outer_loop_first;
    leftover = Hbc_core.Rt_config.Spawn;
    chunk_transferring = true;
    ac_target_polls = 8;
    ac_window = 8;
    plan = Sim.Fault_plan.none;
    bug = Some bug;
    native_beat = None;
  }

(* End to end: a forced scheduler bug fails, shrinks while preserving the
   failure class, JSON round-trips, and the replayed shrunk case reproduces
   the same class. *)
let fuzz_forced_failure_shrinks_and_replays () =
  let c = forced_case Hbc_core.Executor.Duplicate_leftover in
  let o = Sanitizer.Fuzz.run_case c in
  let f =
    match o.Sanitizer.Fuzz.failure with
    | Some f -> f
    | None -> Alcotest.fail "forced bug was not caught"
  in
  let kind = Sanitizer.Fuzz.failure_kind f in
  check Alcotest.string "failure class" "violation:work-conservation" kind;
  let shrunk, _spent = Sanitizer.Fuzz.shrink c ~kind in
  Alcotest.(check bool)
    "shrunk case is no larger" true
    (shrunk.Sanitizer.Fuzz.scale <= c.Sanitizer.Fuzz.scale
    && shrunk.Sanitizer.Fuzz.workers <= c.Sanitizer.Fuzz.workers);
  let json =
    Sanitizer.Fuzz.repro_to_json shrunk ~kind ~summary:(Sanitizer.Fuzz.failure_describe f)
  in
  let txt = Obs.Json.to_string json in
  match Sanitizer.Fuzz.repro_of_json (Obs.Json.parse txt) with
  | Error e -> Alcotest.failf "repro did not round-trip: %s" e
  | Ok (c2, expect) ->
      check Alcotest.string "expected kind round-trips" kind expect;
      check Alcotest.string "case round-trips byte-identically"
        (Sanitizer.Fuzz.case_hash shrunk) (Sanitizer.Fuzz.case_hash c2);
      let o2 = Sanitizer.Fuzz.run_case c2 in
      let got =
        match o2.Sanitizer.Fuzz.failure with
        | Some f2 -> Sanitizer.Fuzz.failure_kind f2
        | None -> "none"
      in
      check Alcotest.string "replay reproduces the class" kind got

let suite =
  [
    Alcotest.test_case "tee sums branch drops" `Quick tee_dropped_sum;
    Alcotest.test_case "tee captured is time-ordered" `Quick tee_captured_order;
    Alcotest.test_case "signature covers sanitize/fuzz bits" `Quick
      signature_covers_sanitizer_bits;
    Alcotest.test_case "deque: singleton steal" `Quick deque_singleton_steal;
    Alcotest.test_case "deque: steal races bottom pop" `Quick deque_steal_races_bottom_pop;
    Alcotest.test_case "deque: state after failed steal" `Quick deque_state_after_failed_steal;
    Alcotest.test_case "catches duplicated leftover" `Quick catches_duplicate_leftover;
    Alcotest.test_case "catches lost stolen task" `Quick catches_lost_stolen_task;
    Alcotest.test_case "catches innermost promotion" `Quick catches_inner_promotion;
    Alcotest.test_case "clean runs: zero violations, identical results" `Quick
      clean_run_zero_violations_and_identical;
    Alcotest.test_case "fuzz generation is deterministic" `Quick fuzz_generation_deterministic;
    Alcotest.test_case "fuzz: generated cases pass" `Quick fuzz_clean_cases_pass;
    Alcotest.test_case "fuzz: forced failure shrinks and replays" `Quick
      fuzz_forced_failure_shrinks_and_replays;
  ]
