(* Tests for the heartbeat runtime: adaptive chunking, executor correctness
   against the sequential reference (including a qcheck sweep over random
   loop nests), promotion semantics, mechanisms, DNF, determinism. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ------------------------ adaptive chunking ----------------------- *)

let ac_initial () =
  let ac = Sched.Adaptive_chunking.create ~target_polls:8 ~window:4 () in
  check_int "starts at 1" 1 (Sched.Adaptive_chunking.chunk_size ac)

let ac_grows_when_polling_too_much () =
  let ac = Sched.Adaptive_chunking.create ~target_polls:8 ~window:2 () in
  for _ = 1 to 80 do
    Sched.Adaptive_chunking.on_poll ac
  done;
  Alcotest.(check (option int)) "window open" None (Sched.Adaptive_chunking.on_heartbeat ac);
  for _ = 1 to 96 do
    Sched.Adaptive_chunking.on_poll ac
  done;
  (* min(80, 96) / 8 = 10 -> chunk 1 * 10 *)
  Alcotest.(check (option int)) "rescaled" (Some 10) (Sched.Adaptive_chunking.on_heartbeat ac)

let ac_shrinks_when_polling_too_little () =
  let ac = Sched.Adaptive_chunking.create ~initial_chunk:100 ~target_polls:8 ~window:1 () in
  for _ = 1 to 2 do
    Sched.Adaptive_chunking.on_poll ac
  done;
  (* 2/8 * 100 = 25 *)
  Alcotest.(check (option int)) "shrunk" (Some 25) (Sched.Adaptive_chunking.on_heartbeat ac)

let ac_never_below_one () =
  let ac = Sched.Adaptive_chunking.create ~initial_chunk:2 ~target_polls:8 ~window:1 () in
  ignore (Sched.Adaptive_chunking.on_heartbeat ac);
  check_int "floor" 1 (Sched.Adaptive_chunking.chunk_size ac)

let ac_rejects_bad_params () =
  check_bool "target" true
    (try
       ignore (Sched.Adaptive_chunking.create ~target_polls:0 ~window:1 ());
       false
     with Invalid_argument _ -> true);
  check_bool "window" true
    (try
       ignore (Sched.Adaptive_chunking.create ~target_polls:1 ~window:0 ());
       false
     with Invalid_argument _ -> true)

let ac_invariants =
  QCheck.Test.make ~name:"AC chunk always >= 1 and window resets" ~count:300
    QCheck.(triple (int_range 1 20) (int_range 1 6) (list (int_range 0 200)))
    (fun (target, window, beats) ->
      let ac = Sched.Adaptive_chunking.create ~target_polls:target ~window () in
      List.for_all
        (fun polls ->
          for _ = 1 to polls do
            Sched.Adaptive_chunking.on_poll ac
          done;
          ignore (Sched.Adaptive_chunking.on_heartbeat ac);
          Sched.Adaptive_chunking.chunk_size ac >= 1
          && Sched.Adaptive_chunking.intervals_logged ac < window)
        beats)

(* ------------------------- test programs -------------------------- *)

type env = { rows : int; sizes : int array; base : int array; out : float array; mutable total : float }

(* spmv-shaped irregular nest with an inner reduction and tail work. *)
let make_irregular ~rows ~max_size ~seed =
  let rng = Sim.Sim_rng.create seed in
  let sizes = Array.init rows (fun _ -> Sim.Sim_rng.int rng max_size) in
  let base = Array.make (rows + 1) 0 in
  for i = 0 to rows - 1 do
    base.(i + 1) <- base.(i) + sizes.(i)
  done;
  let inner =
    Ir.Nest.loop ~name:"inner"
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
      ~reduction:(fun d s -> d.Ir.Locals.floats.(0) <- d.Ir.Locals.floats.(0) +. s.Ir.Locals.floats.(0))
      ~bounds:(fun e (ctxs : Ir.Ctx.set) ->
        let i = ctxs.(0).Ir.Ctx.lo in
        (e.base.(i), e.base.(i + 1)))
      [
        Ir.Nest.stmt ~name:"acc" (fun _ ctxs j ->
            let l = ctxs.(1).Ir.Ctx.locals in
            l.Ir.Locals.floats.(0) <- l.Ir.Locals.floats.(0) +. (Float.of_int (j mod 13) /. 13.0);
            9);
      ]
  in
  let root =
    Ir.Nest.loop ~name:"outer"
      ~bounds:(fun e _ -> (0, e.rows))
      [
        Ir.Nest.Nested inner;
        Ir.Nest.stmt ~name:"store" (fun e ctxs i ->
            e.out.(i) <- ctxs.(1).Ir.Ctx.locals.Ir.Locals.floats.(0) +. Float.of_int i;
            7);
      ]
  in
  Ir.Program.v ~name:"test-irregular"
    ~make_env:(fun () -> { rows; sizes; base; out = Array.make rows 0.0; total = 0.0 })
    ~nests:[ root ]
    ~driver:(fun _ cpu -> cpu.Ir.Program.exec root)
    ~fingerprint:(fun e ->
      Array.to_seq e.out |> Seq.fold_lefti (fun acc i v -> acc +. (v *. Float.of_int ((i mod 7) + 1))) 0.0)
    ()

let fingerprints_match ?(tol = 1e-9) a b =
  Sim.Run_result.fingerprints_close ~tol a b

let run_hbc ?(cfg = Hbc_core.Rt_config.default) ?request p =
  Hbc_core.Executor.run ?request cfg p

(* --------------------- executor vs sequential --------------------- *)

let hbc_matches_seq () =
  let p = make_irregular ~rows:4_000 ~max_size:40 ~seed:1 in
  let seq = Baselines.Serial_exec.run_program p in
  let hbc = run_hbc p in
  check_bool "fingerprint" true (fingerprints_match seq hbc);
  check_int "same work" seq.Sim.Run_result.work_cycles hbc.Sim.Run_result.work_cycles;
  check_bool "faster than sequential" true
    (hbc.Sim.Run_result.makespan < seq.Sim.Run_result.work_cycles)

let hbc_single_worker_accounting () =
  (* With one worker and promotions off, makespan = work + charged overheads. *)
  let p = make_irregular ~rows:1_000 ~max_size:20 ~seed:2 in
  let cfg = { Hbc_core.Rt_config.default with workers = 1; promotion = false } in
  let r = run_hbc ~cfg p in
  check_int "makespan = work + overhead"
    (r.Sim.Run_result.work_cycles + r.Sim.Run_result.metrics.Sim.Metrics.overhead_cycles)
    r.Sim.Run_result.makespan;
  check_int "no promotions" 0 r.Sim.Run_result.metrics.Sim.Metrics.promotions

let hbc_deterministic () =
  let p = make_irregular ~rows:3_000 ~max_size:30 ~seed:3 in
  let a = run_hbc p and b = run_hbc p in
  check_int "same makespan" a.Sim.Run_result.makespan b.Sim.Run_result.makespan;
  check_int "same promotions" a.Sim.Run_result.metrics.Sim.Metrics.promotions
    b.Sim.Run_result.metrics.Sim.Metrics.promotions;
  Alcotest.(check (float 0.0)) "same fingerprint" a.Sim.Run_result.fingerprint
    b.Sim.Run_result.fingerprint

let hbc_seed_changes_schedule_not_result () =
  let p = make_irregular ~rows:3_000 ~max_size:30 ~seed:4 in
  let a = run_hbc ~cfg:{ Hbc_core.Rt_config.default with seed = 1 } p in
  let b = run_hbc ~cfg:{ Hbc_core.Rt_config.default with seed = 99 } p in
  check_bool "results agree" true (fingerprints_match a b)

let all_mechanisms_correct () =
  let p = make_irregular ~rows:3_000 ~max_size:30 ~seed:5 in
  let seq = Baselines.Serial_exec.run_program p in
  List.iter
    (fun (name, cfg) ->
      let r = run_hbc ~cfg p in
      check_bool name true (fingerprints_match seq r))
    [
      ("polling", Hbc_core.Rt_config.default);
      ("kernel module", Hbc_core.Rt_config.hbc_kernel_module);
      ("ping thread", Hbc_core.Rt_config.hbc_ping_thread);
      ("tpal", Hbc_core.Rt_config.tpal ~chunk:32);
      ("no chunking", { Hbc_core.Rt_config.default with chunk = Hbc_core.Compiled.No_chunking });
      ("static 7", { Hbc_core.Rt_config.default with chunk = Hbc_core.Compiled.Static 7 });
      ("leaves-only pairs would also work", Hbc_core.Rt_config.default);
    ]

let worker_counts_correct () =
  let p = make_irregular ~rows:2_000 ~max_size:25 ~seed:6 in
  let seq = Baselines.Serial_exec.run_program p in
  List.iter
    (fun w ->
      let r = run_hbc ~cfg:{ Hbc_core.Rt_config.default with workers = w } p in
      check_bool (Printf.sprintf "%d workers" w) true (fingerprints_match seq r))
    [ 1; 2; 3; 7; 16; 64; 128 ]

let promotions_actually_happen () =
  let p = make_irregular ~rows:6_000 ~max_size:40 ~seed:7 in
  let r = run_hbc p in
  let m = r.Sim.Run_result.metrics in
  check_bool "promotions" true (m.Sim.Metrics.promotions > 0);
  check_bool "leftovers ran" true (m.Sim.Metrics.leftover_tasks_run > 0);
  check_bool "steals" true (m.Sim.Metrics.steals > 0)

let inner_loop_promoted_when_outer_exhausted () =
  (* One giant inner loop (arrowhead row 0): the only latent parallelism
     after the outer loop is consumed sits in the inner loop, so promotions
     must reach nesting level 1. *)
  let rows = 40 in
  let sizes = Array.make rows 30_000 in
  let base = Array.make (rows + 1) 0 in
  for i = 0 to rows - 1 do
    base.(i + 1) <- base.(i) + sizes.(i)
  done;
  let inner =
    Ir.Nest.loop ~name:"giant_inner"
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
      ~reduction:(fun d s -> d.Ir.Locals.floats.(0) <- d.Ir.Locals.floats.(0) +. s.Ir.Locals.floats.(0))
      ~bounds:(fun (e : env) (ctxs : Ir.Ctx.set) ->
        let i = ctxs.(0).Ir.Ctx.lo in
        (e.base.(i), e.base.(i + 1)))
      [
        Ir.Nest.stmt ~name:"acc" (fun _ ctxs j ->
            let l = ctxs.(1).Ir.Ctx.locals in
            l.Ir.Locals.floats.(0) <- l.Ir.Locals.floats.(0) +. Float.of_int (j land 7);
            9);
      ]
  in
  let root =
    Ir.Nest.loop ~name:"narrow_outer"
      ~bounds:(fun (e : env) _ -> (0, e.rows))
      [
        Ir.Nest.Nested inner;
        Ir.Nest.stmt ~name:"store" (fun e ctxs i ->
            e.out.(i) <- ctxs.(1).Ir.Ctx.locals.Ir.Locals.floats.(0);
            7);
      ]
  in
  let p =
    Ir.Program.v ~name:"giant-rows"
      ~make_env:(fun () -> { rows; sizes; base; out = Array.make rows 0.0; total = 0.0 })
      ~nests:[ root ]
      ~driver:(fun _ cpu -> cpu.Ir.Program.exec root)
      ~fingerprint:(fun e -> Array.fold_left ( +. ) 0.0 e.out)
      ()
  in
  let seq = Baselines.Serial_exec.run_program p in
  let r = run_hbc p in
  check_bool "correct" true (fingerprints_match seq r);
  check_bool "inner loop promoted" true
    (r.Sim.Run_result.metrics.Sim.Metrics.promotions_by_level.(1) > 0)

let dnf_cap_enforced () =
  let p = make_irregular ~rows:3_000 ~max_size:30 ~seed:8 in
  let r = run_hbc ~request:(Hbc_core.Run_request.make ~max_cycles:1_000 ()) p in
  check_bool "flagged dnf" true r.Sim.Run_result.dnf

let heartbeats_detected_polling () =
  let p = make_irregular ~rows:6_000 ~max_size:40 ~seed:9 in
  let r = run_hbc p in
  let m = r.Sim.Run_result.metrics in
  check_bool "beats generated" true (m.Sim.Metrics.heartbeats_generated > 0);
  check_bool "detection above 90%" true (Sim.Metrics.detection_rate m > 90.0)

let tpal_skips_chunk_transfer () =
  let p = make_irregular ~rows:2_000 ~max_size:12 ~seed:10 in
  let hbc =
    run_hbc ~cfg:{ Hbc_core.Rt_config.default with workers = 1; promotion = false } p
  in
  let tpal =
    run_hbc
      ~cfg:{ (Hbc_core.Rt_config.tpal ~chunk:64) with workers = 1; promotion = false }
      p
  in
  check_bool "hbc pays transfer" true
    (Sim.Metrics.overhead_of hbc.Sim.Run_result.metrics "chunk-transfer" > 0);
  check_int "tpal does not" 0 (Sim.Metrics.overhead_of tpal.Sim.Run_result.metrics "chunk-transfer")

let interrupt_mode_has_no_polls () =
  let p = make_irregular ~rows:2_000 ~max_size:12 ~seed:11 in
  let r = run_hbc ~cfg:Hbc_core.Rt_config.hbc_kernel_module p in
  check_int "polls" 0 r.Sim.Run_result.metrics.Sim.Metrics.polls

(* 3-level nest exercising multi-level leftovers and deep promotions. *)
type env3 = { n1 : int; n2 : int; n3 : int; out : float array }

let make_deep ~n1 ~n2 ~n3 =
  let leaf =
    Ir.Nest.loop ~name:"leaf"
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
      ~reduction:(fun d s -> d.Ir.Locals.floats.(0) <- d.Ir.Locals.floats.(0) +. s.Ir.Locals.floats.(0))
      ~bounds:(fun e _ -> (0, e.n3))
      [
        Ir.Nest.stmt ~name:"w" (fun _ ctxs k ->
            let l = ctxs.(2).Ir.Ctx.locals in
            l.Ir.Locals.floats.(0) <- l.Ir.Locals.floats.(0) +. Float.of_int ((k * 3 mod 11) + 1);
            8);
      ]
  in
  let mid =
    Ir.Nest.loop ~name:"mid"
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
      ~reduction:(fun d s -> d.Ir.Locals.floats.(0) <- d.Ir.Locals.floats.(0) +. s.Ir.Locals.floats.(0))
      ~bounds:(fun e _ -> (0, e.n2))
      [
        Ir.Nest.Nested leaf;
        Ir.Nest.stmt ~name:"fold" (fun _ ctxs _ ->
            let m = ctxs.(1).Ir.Ctx.locals and l = ctxs.(2).Ir.Ctx.locals in
            m.Ir.Locals.floats.(0) <- m.Ir.Locals.floats.(0) +. l.Ir.Locals.floats.(0);
            4);
      ]
  in
  let root =
    Ir.Nest.loop ~name:"top"
      ~bounds:(fun e _ -> (0, e.n1))
      [
        Ir.Nest.Nested mid;
        Ir.Nest.stmt ~name:"store" (fun e ctxs i ->
            e.out.(i) <- ctxs.(1).Ir.Ctx.locals.Ir.Locals.floats.(0);
            5);
      ]
  in
  Ir.Program.v ~name:"deep3"
    ~make_env:(fun () -> { n1; n2; n3; out = Array.make n1 0.0 })
    ~nests:[ root ]
    ~driver:(fun _ cpu -> cpu.Ir.Program.exec root)
    ~fingerprint:(fun e -> Array.fold_left ( +. ) 0.0 e.out)
    ()

let deep_nest_correct () =
  let p = make_deep ~n1:60 ~n2:40 ~n3:50 in
  let seq = Baselines.Serial_exec.run_program p in
  let hbc = run_hbc p in
  check_bool "fingerprints" true (fingerprints_match seq hbc)

let deep_nest_promotes_all_levels () =
  let p = make_deep ~n1:80 ~n2:60 ~n3:60 in
  let r = run_hbc p in
  let m = r.Sim.Run_result.metrics in
  check_bool "level 0" true (m.Sim.Metrics.promotions_by_level.(0) > 0)

(* ------------------ qcheck: random nests vs serial ----------------- *)

let random_nest_correct =
  QCheck.Test.make ~name:"random irregular nests: HBC = sequential" ~count:25
    QCheck.(triple (int_range 50 800) (int_range 1 60) (int_range 0 1000))
    (fun (rows, max_size, seed) ->
      let p = make_irregular ~rows ~max_size:(Stdlib.max 1 max_size) ~seed in
      let seq = Baselines.Serial_exec.run_program p in
      let hbc = run_hbc p in
      let tpal = run_hbc ~cfg:(Hbc_core.Rt_config.tpal ~chunk:16) p in
      fingerprints_match seq hbc && fingerprints_match seq tpal)

(* Random 3-level nests with multiple children per level, empty inner
   ranges, reductions and tail statements: stresses every leftover shape
   (including promotions inside leftover tasks that skip forward past the
   re-split ancestor). *)
type genv = { widths : int array; cells : float array; out : float array }

let make_random_tree ~seed =
  let rng = Sim.Sim_rng.create seed in
  let n1 = 20 + Sim.Sim_rng.int rng 60 in
  let n_children = 1 + Sim.Sim_rng.int rng 2 in
  let widths = Array.init (n1 * 4) (fun _ -> Sim.Sim_rng.int rng 25) in
  (* Simpler concrete shape with known ordinals: root(0) > mid(1) > leaf(2),
     plus a second root child leaf2(3). *)
  let leaf =
    Ir.Nest.loop ~name:"rleaf"
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
      ~reduction:(fun d s -> d.Ir.Locals.floats.(0) <- d.Ir.Locals.floats.(0) +. s.Ir.Locals.floats.(0))
      ~bounds:(fun (e : genv) (ctxs : Ir.Ctx.set) ->
        let j = ctxs.(1).Ir.Ctx.lo in
        (0, e.widths.(((j * 4) + 2) mod Array.length e.widths) mod 17))
      [
        Ir.Nest.stmt ~name:"w" (fun (e : genv) ctxs k ->
            let l = ctxs.(2).Ir.Ctx.locals in
            l.Ir.Locals.floats.(0) <-
              l.Ir.Locals.floats.(0) +. e.cells.((k * 13) mod Array.length e.cells);
            6);
      ]
  in
  let mid =
    Ir.Nest.loop ~name:"rmid"
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
      ~reduction:(fun d s -> d.Ir.Locals.floats.(0) <- d.Ir.Locals.floats.(0) +. s.Ir.Locals.floats.(0))
      ~bounds:(fun (e : genv) (ctxs : Ir.Ctx.set) ->
        let i = ctxs.(0).Ir.Ctx.lo in
        (0, e.widths.((i * 4) + 1)))
      [
        Ir.Nest.Nested leaf;
        Ir.Nest.stmt ~name:"fold" (fun _ ctxs _ ->
            let m = ctxs.(1).Ir.Ctx.locals and l = ctxs.(2).Ir.Ctx.locals in
            m.Ir.Locals.floats.(0) <- m.Ir.Locals.floats.(0) +. l.Ir.Locals.floats.(0);
            3);
      ]
  in
  let leaf2 =
    Ir.Nest.loop ~name:"rleaf2"
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
      ~reduction:(fun d s -> d.Ir.Locals.floats.(0) <- d.Ir.Locals.floats.(0) +. s.Ir.Locals.floats.(0))
      ~bounds:(fun (e : genv) (ctxs : Ir.Ctx.set) ->
        let i = ctxs.(0).Ir.Ctx.lo in
        (0, e.widths.(((i * 4) + 3) mod Array.length e.widths) mod 9))
      [
        Ir.Nest.stmt ~name:"w2" (fun (e : genv) ctxs k ->
            let l = ctxs.(3).Ir.Ctx.locals in
            l.Ir.Locals.floats.(0) <-
              l.Ir.Locals.floats.(0) +. e.cells.((k * 7) mod Array.length e.cells);
            5);
      ]
  in
  let body =
    if n_children = 1 then
      [
        Ir.Nest.Nested mid;
        Ir.Nest.stmt ~name:"store" (fun (e : genv) ctxs i ->
            e.out.(i) <- ctxs.(1).Ir.Ctx.locals.Ir.Locals.floats.(0);
            4);
      ]
    else
      [
        Ir.Nest.Nested mid;
        Ir.Nest.stmt ~name:"store1" (fun (e : genv) ctxs i ->
            e.out.(i) <- ctxs.(1).Ir.Ctx.locals.Ir.Locals.floats.(0);
            4);
        Ir.Nest.Nested leaf2;
        Ir.Nest.stmt ~name:"store2" (fun (e : genv) ctxs i ->
            e.out.(i) <- e.out.(i) +. (2.0 *. ctxs.(3).Ir.Ctx.locals.Ir.Locals.floats.(0));
            4);
      ]
  in
  let root = Ir.Nest.loop ~name:"rtop" ~bounds:(fun (e : genv) _ -> (0, Array.length e.out)) body in
  Ir.Program.v ~name:"random-tree"
    ~make_env:(fun () ->
      {
        widths;
        cells = Array.init 64 (fun i -> Float.of_int ((i * 31 mod 37) + 1) /. 37.0);
        out = Array.make n1 0.0;
      })
    ~nests:[ root ]
    ~driver:(fun _ cpu -> cpu.Ir.Program.exec root)
    ~fingerprint:(fun e ->
      Array.to_seq e.out
      |> Seq.fold_lefti (fun acc i v -> acc +. (v *. Float.of_int ((i mod 5) + 1))) 0.0)
    ()

let force_promotion_differential =
  (* The maximal-promotion schedule: every PRPPT promotes. Exercises every
     loop-slice and leftover path far more densely than real heartbeats. *)
  QCheck.Test.make ~name:"force-promotion fuzzing: maximal schedule = sequential" ~count:20
    QCheck.(pair (int_range 20 200) (int_range 0 2000))
    (fun (rows, seed) ->
      let p = make_irregular ~rows ~max_size:12 ~seed in
      let seq = Baselines.Serial_exec.run_program p in
      let forced =
        run_hbc
          ~cfg:
            {
              Hbc_core.Rt_config.default with
              workers = 4;
              force_promotion = true;
              chunk = Hbc_core.Compiled.Static 2;
            }
          p
      in
      fingerprints_match seq forced
      && forced.Sim.Run_result.metrics.Sim.Metrics.promotions > 0)

let force_promotion_deep () =
  let p = make_deep ~n1:12 ~n2:8 ~n3:10 in
  let seq = Baselines.Serial_exec.run_program p in
  let forced =
    run_hbc
      ~cfg:
        {
          Hbc_core.Rt_config.default with
          workers = 4;
          force_promotion = true;
          chunk = Hbc_core.Compiled.Static 2;
        }
      p
  in
  check_bool "3-level nest correct under maximal promotion" true (fingerprints_match seq forced);
  check_bool "leftovers exercised" true
    (forced.Sim.Run_result.metrics.Sim.Metrics.leftover_tasks_run > 0)

let random_tree_correct =
  QCheck.Test.make ~name:"random 3-level trees: all executors agree" ~count:30
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let p = make_random_tree ~seed in
      let seq = Baselines.Serial_exec.run_program p in
      let hbc =
        run_hbc ~cfg:{ Hbc_core.Rt_config.default with workers = 8; chunk = Hbc_core.Compiled.Static 3 } p
      in
      let tpal = run_hbc ~cfg:{ (Hbc_core.Rt_config.tpal ~chunk:3) with workers = 8 } p in
      let omp = Baselines.Openmp.run_program (Baselines.Openmp.dynamic ~workers:8 ()) p in
      fingerprints_match seq hbc && fingerprints_match seq tpal && fingerprints_match seq omp)

(* Regression: under innermost-first promotion on a >=3-level nest, leftover
   tasks hold frozen snapshots of loops ABOVE their split point that can
   still show remaining iterations; without the task-ownership boundary the
   leftover would re-split work the original task still owns — exponential
   duplication (this hung before the fix) and wrong results. *)
let innermost_ownership_regression () =
  let p = make_deep ~n1:40 ~n2:24 ~n3:30 in
  let seq = Baselines.Serial_exec.run_program p in
  let inner =
    run_hbc
      ~cfg:
        { Hbc_core.Rt_config.default with policy = Hbc_core.Rt_config.Innermost_first; workers = 16 }
      p
  in
  check_bool "correct" true (fingerprints_match seq inner);
  check_int "work executed exactly once" seq.Sim.Run_result.work_cycles
    inner.Sim.Run_result.work_cycles;
  (* and under maximal promotion pressure too *)
  let forced =
    run_hbc
      ~cfg:
        {
          Hbc_core.Rt_config.default with
          policy = Hbc_core.Rt_config.Innermost_first;
          force_promotion = true;
          chunk = Hbc_core.Compiled.Static 2;
          workers = 8;
        }
      p
  in
  check_bool "correct under forced promotion" true (fingerprints_match seq forced);
  check_int "no duplicated work under forced promotion" seq.Sim.Run_result.work_cycles
    forced.Sim.Run_result.work_cycles

(* A DOALL outer loop containing a sequential (non-DOALL) inner loop: the
   executor must run the pruned loop inline, never promote it, and still
   parallelize the outer loop. *)
type senv = { width : int; out2 : float array }

let make_with_sequential_inner ~rows ~width =
  let seq_inner =
    Ir.Nest.loop ~name:"seq_inner" ~doall:false
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
      ~bounds:(fun (e : senv) _ -> (0, e.width))
      [
        Ir.Nest.stmt ~name:"acc" (fun _ ctxs k ->
            let l = ctxs.(1).Ir.Ctx.locals in
            l.Ir.Locals.floats.(0) <- l.Ir.Locals.floats.(0) +. Float.of_int ((k * 7 mod 11) + 1);
            6);
      ]
  in
  let root =
    Ir.Nest.loop ~name:"outer_seqinner"
      ~bounds:(fun (e : senv) _ -> (0, Array.length e.out2))
      [
        Ir.Nest.Nested seq_inner;
        Ir.Nest.stmt ~name:"store" (fun e ctxs i ->
            e.out2.(i) <- ctxs.(1).Ir.Ctx.locals.Ir.Locals.floats.(0) *. Float.of_int (i + 1);
            5);
      ]
  in
  Ir.Program.v ~name:"seq-inner"
    ~make_env:(fun () -> { width; out2 = Array.make rows 0.0 })
    ~nests:[ root ]
    ~driver:(fun _ cpu -> cpu.Ir.Program.exec root)
    ~fingerprint:(fun e -> Array.fold_left ( +. ) 0.0 e.out2)
    ()

let sequential_inner_loop_correct () =
  let p = make_with_sequential_inner ~rows:12_000 ~width:25 in
  let seq = Baselines.Serial_exec.run_program p in
  let hbc = run_hbc p in
  check_bool "correct" true (fingerprints_match seq hbc);
  check_bool "outer still parallelized" true
    (hbc.Sim.Run_result.makespan < seq.Sim.Run_result.work_cycles / 3);
  (* all promotions at level 0: the pruned loop is invisible to the tree *)
  let m = hbc.Sim.Run_result.metrics in
  check_int "no level-1 promotions" 0 m.Sim.Metrics.promotions_by_level.(1);
  let omp = Baselines.Openmp.run_program (Baselines.Openmp.dynamic ()) p in
  check_bool "omp too" true (fingerprints_match seq omp)

let overhead_attribution_consistent () =
  (* per-kind attributions sum exactly to the overhead total *)
  let p = make_irregular ~rows:3_000 ~max_size:25 ~seed:77 in
  let r = run_hbc p in
  let m = r.Sim.Run_result.metrics in
  let sum = Hashtbl.fold (fun _ v acc -> acc + v) m.Sim.Metrics.overhead_by_kind 0 in
  check_int "attribution sums to total" m.Sim.Metrics.overhead_cycles sum;
  check_bool "work + overhead >= makespan budget sanity" true
    (m.Sim.Metrics.work_cycles + m.Sim.Metrics.overhead_cycles
    >= r.Sim.Run_result.makespan)

let hbc_parallelizes_omp_serial_nests () =
  (* kmeans' update nest (an omp_serial_nests entry) is serial under OpenMP
     but an ordinary promotable nest under HBC. The array-reduction nest
     alone must parallelize well beyond what a serial update would allow:
     the update is ~12% of total work, so Amdahl caps a serial-update
     executor at ~8x; HBC must clear that. *)
  let p = Workloads.Kmeans.program ~scale:0.4 in
  let seq = Baselines.Serial_exec.run_program p in
  let hbc = run_hbc ~cfg:{ Hbc_core.Rt_config.default with workers = 64 } p in
  check_bool "correct" true (Sim.Run_result.fingerprints_close ~tol:1e-7 seq hbc);
  check_bool "beyond the serial-update Amdahl cap" true
    (Sim.Run_result.speedup ~baseline:seq hbc > 8.0);
  check_bool "promotions happened" true
    (hbc.Sim.Run_result.metrics.Sim.Metrics.promotions > 0)

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "AC: initial chunk" `Quick ac_initial;
    Alcotest.test_case "AC: grows" `Quick ac_grows_when_polling_too_much;
    Alcotest.test_case "AC: shrinks" `Quick ac_shrinks_when_polling_too_little;
    Alcotest.test_case "AC: floor at 1" `Quick ac_never_below_one;
    Alcotest.test_case "AC: parameter validation" `Quick ac_rejects_bad_params;
    qt ac_invariants;
    Alcotest.test_case "executor: matches sequential" `Quick hbc_matches_seq;
    Alcotest.test_case "executor: 1-worker accounting" `Quick hbc_single_worker_accounting;
    Alcotest.test_case "executor: deterministic" `Quick hbc_deterministic;
    Alcotest.test_case "executor: seed-independent results" `Quick hbc_seed_changes_schedule_not_result;
    Alcotest.test_case "executor: all mechanisms correct" `Quick all_mechanisms_correct;
    Alcotest.test_case "executor: many worker counts" `Quick worker_counts_correct;
    Alcotest.test_case "executor: promotions happen" `Quick promotions_actually_happen;
    Alcotest.test_case "executor: inner-loop promotion" `Quick inner_loop_promoted_when_outer_exhausted;
    Alcotest.test_case "executor: DNF cap" `Quick dnf_cap_enforced;
    Alcotest.test_case "executor: heartbeat detection" `Quick heartbeats_detected_polling;
    Alcotest.test_case "executor: TPAL skips chunk transfer" `Quick tpal_skips_chunk_transfer;
    Alcotest.test_case "executor: interrupts never poll" `Quick interrupt_mode_has_no_polls;
    Alcotest.test_case "executor: sequential inner loop" `Quick sequential_inner_loop_correct;
    Alcotest.test_case "executor: overhead attribution" `Quick overhead_attribution_consistent;
    Alcotest.test_case "executor: parallelizes OpenMP-serial nests" `Quick hbc_parallelizes_omp_serial_nests;
    Alcotest.test_case "executor: 3-level nest correct" `Quick deep_nest_correct;
    Alcotest.test_case "executor: 3-level promotions" `Quick deep_nest_promotes_all_levels;
    qt random_nest_correct;
    Alcotest.test_case "regression: innermost ownership boundary" `Quick
      innermost_ownership_regression;
    qt force_promotion_differential;
    Alcotest.test_case "force-promotion: deep nest" `Quick force_promotion_deep;
    qt random_tree_correct;
  ]
