(* Tests for the sequential reference and the OpenMP-like runtime. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

type env = { n : int; out : float array; mutable sum : float }

let flat_reduce_program ~n =
  let root =
    Ir.Nest.loop ~name:"reduce"
      ~locals_spec:{ Ir.Locals.nfloats = 1; nints = 0 }
      ~init:(fun _ (l : Ir.Locals.t) -> l.Ir.Locals.floats.(0) <- 0.0)
      ~reduction:(fun d s -> d.Ir.Locals.floats.(0) <- d.Ir.Locals.floats.(0) +. s.Ir.Locals.floats.(0))
      ~commit:(fun e (ctxs : Ir.Ctx.set) -> e.sum <- ctxs.(0).Ir.Ctx.locals.Ir.Locals.floats.(0))
      ~bounds:(fun e _ -> (0, e.n))
      [
        Ir.Nest.stmt ~name:"add" (fun _ ctxs i ->
            let l = ctxs.(0).Ir.Ctx.locals in
            l.Ir.Locals.floats.(0) <- l.Ir.Locals.floats.(0) +. Float.of_int ((i mod 9) + 1);
            5);
      ]
  in
  Ir.Program.v ~name:"flat-reduce"
    ~make_env:(fun () -> { n; out = [||]; sum = 0.0 })
    ~nests:[ root ]
    ~driver:(fun _ cpu -> cpu.Ir.Program.exec root)
    ~fingerprint:(fun e -> e.sum)
    ()

let nested_program ~rows ~cols =
  let inner =
    Ir.Nest.loop ~name:"inner_np"
      ~bounds:(fun _ _ -> (0, cols))
      [
        Ir.Nest.stmt ~name:"w" (fun e (ctxs : Ir.Ctx.set) j ->
            let i = ctxs.(0).Ir.Ctx.lo in
            e.out.((i * cols) + j) <- Float.of_int ((i * j) mod 17);
            6);
      ]
  in
  let root = Ir.Nest.loop ~name:"outer_np" ~bounds:(fun e _ -> (0, e.n)) [ Ir.Nest.Nested inner ] in
  Ir.Program.v ~name:"nested-write"
    ~make_env:(fun () -> { n = rows; out = Array.make (rows * cols) 0.0; sum = 0.0 })
    ~nests:[ root ]
    ~driver:(fun _ cpu -> cpu.Ir.Program.exec root)
    ~fingerprint:(fun e -> Array.fold_left ( +. ) 0.0 e.out)
    ()

let seq_makespan_equals_work () =
  let p = flat_reduce_program ~n:10_000 in
  let r = Baselines.Serial_exec.run_program p in
  check_int "makespan = work" r.Sim.Run_result.work_cycles r.Sim.Run_result.makespan;
  check_int "pure work" 50_000 r.Sim.Run_result.work_cycles

let omp_static_correct () =
  let p = nested_program ~rows:300 ~cols:80 in
  let seq = Baselines.Serial_exec.run_program p in
  let omp = Baselines.Openmp.run_program (Baselines.Openmp.static ()) p in
  check_bool "same output" true (Sim.Run_result.fingerprints_close seq omp);
  check_bool "faster" true (omp.Sim.Run_result.makespan < seq.Sim.Run_result.makespan)

let omp_dynamic_correct_chunks () =
  let p = nested_program ~rows:300 ~cols:80 in
  let seq = Baselines.Serial_exec.run_program p in
  List.iter
    (fun chunk ->
      let omp = Baselines.Openmp.run_program (Baselines.Openmp.dynamic ~chunk ()) p in
      check_bool (Printf.sprintf "chunk %d" chunk) true (Sim.Run_result.fingerprints_close seq omp))
    [ 1; 2; 8; 64 ]

let omp_reduction_combines_team () =
  let p = flat_reduce_program ~n:20_000 in
  let seq = Baselines.Serial_exec.run_program p in
  let omp = Baselines.Openmp.run_program (Baselines.Openmp.static ()) p in
  check_bool "reduced across workers" true (Sim.Run_result.fingerprints_close seq omp)

let omp_serial_nest_honored () =
  let rootname = "reduce" in
  let p = flat_reduce_program ~n:5_000 in
  let p = { p with Ir.Program.omp_serial_nests = [ rootname ] } in
  let omp = Baselines.Openmp.run_program (Baselines.Openmp.static ()) p in
  let seq = Baselines.Serial_exec.run_program p in
  check_bool "correct" true (Sim.Run_result.fingerprints_close seq omp);
  (* serialized: no parallel speedup at all (only driver runs it) *)
  check_bool "as slow as sequential" true
    (omp.Sim.Run_result.makespan >= seq.Sim.Run_result.makespan)

let omp_nested_mode_explodes () =
  let p = nested_program ~rows:400 ~cols:8 in
  let seq = Baselines.Serial_exec.run_program p in
  let outer = Baselines.Openmp.run_program (Baselines.Openmp.dynamic ()) p in
  let nested =
    Baselines.Openmp.run_program
      { (Baselines.Openmp.dynamic ()) with Baselines.Openmp.nested = Baselines.Openmp.All_doall }
      p
  in
  check_bool "nested output still correct" true (Sim.Run_result.fingerprints_close seq nested);
  check_bool "nested regions much slower" true
    (nested.Sim.Run_result.makespan > 3 * outer.Sim.Run_result.makespan)

let omp_nested_dnf_cap () =
  let p = nested_program ~rows:2_000 ~cols:3 in
  let seq = Baselines.Serial_exec.run_program p in
  let nested =
    Baselines.Openmp.run_program
      ~request:(Hbc_core.Run_request.make ~max_cycles:(2 * seq.Sim.Run_result.work_cycles) ())
      { (Baselines.Openmp.dynamic ()) with Baselines.Openmp.nested = Baselines.Openmp.All_doall }
      p
  in
  check_bool "did not finish" true nested.Sim.Run_result.dnf

let omp_deterministic () =
  let p = nested_program ~rows:200 ~cols:50 in
  let a = Baselines.Openmp.run_program (Baselines.Openmp.dynamic ()) p in
  let b = Baselines.Openmp.run_program (Baselines.Openmp.dynamic ()) p in
  check_int "same makespan" a.Sim.Run_result.makespan b.Sim.Run_result.makespan

let omp_guided_correct_and_coarser () =
  let p = nested_program ~rows:400 ~cols:60 in
  let seq = Baselines.Serial_exec.run_program p in
  let guided = Baselines.Openmp.run_program (Baselines.Openmp.guided ~workers:16 ()) p in
  check_bool "correct" true (Sim.Run_result.fingerprints_close seq guided);
  let dyn1 = Baselines.Openmp.run_program (Baselines.Openmp.dynamic ~workers:16 ()) p in
  (* guided grabs far fewer, bigger chunks: fewer dispatch events *)
  check_bool "fewer dispatches than dynamic(1)" true
    (Sim.Metrics.overhead_of guided.Sim.Run_result.metrics "omp-dispatch"
    < Sim.Metrics.overhead_of dyn1.Sim.Run_result.metrics "omp-dispatch" / 2)

let tpal_wrapper () =
  let p = nested_program ~rows:300 ~cols:60 in
  let seq = Baselines.Serial_exec.run_program p in
  let tpal = Baselines.Tpal.run_program ~chunk:32 p in
  check_bool "correct" true (Sim.Run_result.fingerprints_close seq tpal)

let suite =
  [
    Alcotest.test_case "sequential: makespan = work" `Quick seq_makespan_equals_work;
    Alcotest.test_case "omp static: correct" `Quick omp_static_correct;
    Alcotest.test_case "omp dynamic: chunk sweep correct" `Quick omp_dynamic_correct_chunks;
    Alcotest.test_case "omp: team reduction" `Quick omp_reduction_combines_team;
    Alcotest.test_case "omp: serial-nest pragma" `Quick omp_serial_nest_honored;
    Alcotest.test_case "omp: nested regions explode" `Quick omp_nested_mode_explodes;
    Alcotest.test_case "omp: nested DNF cap" `Quick omp_nested_dnf_cap;
    Alcotest.test_case "omp: deterministic" `Quick omp_deterministic;
    Alcotest.test_case "omp guided: correct, coarser" `Quick omp_guided_correct_and_coarser;
    Alcotest.test_case "tpal wrapper correct" `Quick tpal_wrapper;
  ]
