(* Preempt–resume checkpointing: pausing at an engine boundary captures a
   serializable checkpoint; resuming replays the job to the boundary with
   trace emission muted, byte-verifies the re-derived state, and continues
   to a final result byte-identical to an uninterrupted run. *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let rt = { Hbc_core.Rt_config.default with workers = 8; seed = 1 }

let program () = Workloads.Spmv.powerlaw ~scale:0.02

let run ?request () = Hbc_core.Executor.run ?request rt (program ())

let ck_of (r : Sim.Run_result.t) =
  match r.Sim.Run_result.termination with
  | Sim.Run_result.Paused ck -> ck
  | t -> Alcotest.failf "expected a pause, got %s" (Sim.Run_result.termination_to_string t)

let same_result tag (a : Sim.Run_result.t) (b : Sim.Run_result.t) =
  check_int (tag ^ ": makespan") a.Sim.Run_result.makespan b.Sim.Run_result.makespan;
  check_int (tag ^ ": work cycles") a.Sim.Run_result.work_cycles b.Sim.Run_result.work_cycles;
  Alcotest.(check (float 0.0))
    (tag ^ ": fingerprint")
    a.Sim.Run_result.fingerprint b.Sim.Run_result.fingerprint;
  check_int (tag ^ ": promotions") a.Sim.Run_result.metrics.Sim.Metrics.promotions
    b.Sim.Run_result.metrics.Sim.Metrics.promotions

(* ---------------- capture ---------------- *)

let pause_captures_live_state () =
  let full = run () in
  let paused = run ~request:(Hbc_core.Run_request.make ~pause_at:(full.Sim.Run_result.makespan / 2) ()) () in
  let ck = ck_of paused in
  check_int "boundary honoured" (full.Sim.Run_result.makespan / 2) ck.Sim.Checkpoint_state.at_cycle;
  check_int "first episode" 1 ck.Sim.Checkpoint_state.episode;
  check_bool "live slices remain" true (ck.Sim.Checkpoint_state.slices <> []);
  check_bool "iterations owed" true (Sim.Checkpoint_state.remaining_iterations ck > 0);
  check_bool "partial work only" true
    (ck.Sim.Checkpoint_state.work_cycles < full.Sim.Run_result.work_cycles);
  check_bool "paused is not completed" false (Sim.Run_result.completed paused);
  List.iter
    (fun (s : Sim.Checkpoint_state.slice) ->
      check_bool "slice range non-empty" true (s.Sim.Checkpoint_state.sl_lo < s.Sim.Checkpoint_state.sl_hi))
    ck.Sim.Checkpoint_state.slices

let checkpoint_codec_roundtrip () =
  let paused = run ~request:(Hbc_core.Run_request.make ~pause_at:100_000 ()) () in
  let ck = ck_of paused in
  let encoded = Sim.Checkpoint_state.to_string ck in
  (match Sim.Checkpoint_state.of_string encoded with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok ck' ->
      check_bool "structural equality" true (Sim.Checkpoint_state.equal ck ck');
      check_string "byte-stable re-encode" encoded (Sim.Checkpoint_state.to_string ck');
      check_string "digest stable" (Sim.Checkpoint_state.digest ck) (Sim.Checkpoint_state.digest ck'));
  check_bool "garbage rejected" true
    (match Sim.Checkpoint_state.of_string "{\"v\":99}" with Error _ -> true | Ok _ -> false)

(* ---------------- resume ---------------- *)

let resume_is_byte_identical () =
  let full = run () in
  let paused = run ~request:(Hbc_core.Run_request.make ~pause_at:(full.Sim.Run_result.makespan / 2) ()) () in
  let resumed = run ~request:(Hbc_core.Run_request.make ~resume_from:(ck_of paused) ()) () in
  check_bool "resumed finishes" true (Sim.Run_result.completed resumed);
  same_result "resume" full resumed

let multi_episode_resume () =
  let full = run () in
  let q = full.Sim.Run_result.makespan / 4 in
  let paused1 = run ~request:(Hbc_core.Run_request.make ~pause_at:q ()) () in
  let ck1 = ck_of paused1 in
  let paused2 =
    run ~request:(Hbc_core.Run_request.make ~resume_from:ck1 ~pause_at:(2 * q) ()) ()
  in
  let ck2 = ck_of paused2 in
  check_int "episode counts pauses" 2 ck2.Sim.Checkpoint_state.episode;
  check_bool "work grows across episodes" true
    (ck2.Sim.Checkpoint_state.work_cycles > ck1.Sim.Checkpoint_state.work_cycles);
  check_bool "regrants carry the grant history" true
    (List.length ck2.Sim.Checkpoint_state.regrants > List.length ck1.Sim.Checkpoint_state.regrants);
  let resumed = run ~request:(Hbc_core.Run_request.make ~resume_from:ck2 ()) () in
  same_result "two episodes" full resumed

let resume_divergence_detected () =
  let paused = run ~request:(Hbc_core.Run_request.make ~pause_at:100_000 ()) () in
  let ck = ck_of paused in
  let tampered = { ck with Sim.Checkpoint_state.work_cycles = ck.Sim.Checkpoint_state.work_cycles + 1 } in
  let r = run ~request:(Hbc_core.Run_request.make ~resume_from:tampered ()) () in
  match r.Sim.Run_result.termination with
  | Sim.Run_result.Guard_aborted reason ->
      check_bool "names the divergence" true
        (String.length reason >= 17 && String.sub reason 0 17 = "resume-divergence")
  | t -> Alcotest.failf "tampered checkpoint accepted: %s" (Sim.Run_result.termination_to_string t)

(* The pause gate tiles the trace: the pre-pause stream stops strictly
   before the boundary, the resumed stream starts at or after it, and
   their concatenation is exactly the uninterrupted run's stream. *)
let trace_gate_tiling () =
  let traced ?pause_at ?resume_from () =
    let sink = Obs.Trace.Sink.stream () in
    let r = run ~request:(Hbc_core.Run_request.make ~trace:sink ?pause_at ?resume_from ()) () in
    (r, List.map (fun (rec_ : Obs.Trace.record) -> (rec_.Obs.Trace.time, rec_.Obs.Trace.worker, rec_.Obs.Trace.event)) r.Sim.Run_result.trace)
  in
  let full, full_evs = traced () in
  let boundary = full.Sim.Run_result.makespan / 2 in
  let paused, pre = traced ~pause_at:boundary () in
  let _, post = traced ~resume_from:(ck_of paused) () in
  List.iter (fun (t, _, _) -> check_bool "pre-pause before boundary" true (t < boundary)) pre;
  List.iter (fun (t, _, _) -> check_bool "post-resume at/after boundary" true (t >= boundary)) post;
  check_int "episodes tile the stream" (List.length full_evs) (List.length pre + List.length post);
  check_bool "concatenation is the uninterrupted stream" true (pre @ post = full_evs)

let suite =
  [
    Alcotest.test_case "pause captures live state" `Quick pause_captures_live_state;
    Alcotest.test_case "checkpoint codec round-trips" `Quick checkpoint_codec_roundtrip;
    Alcotest.test_case "resume byte-identical" `Quick resume_is_byte_identical;
    Alcotest.test_case "multi-episode resume" `Quick multi_episode_resume;
    Alcotest.test_case "resume divergence detected" `Quick resume_divergence_detected;
    Alcotest.test_case "trace gate tiling" `Quick trace_gate_tiling;
  ]
