(* Fault tolerance on the real domains backend: the portable chaos
   kinds, the starvation-watchdog ladder, and native pause/resume. The
   layer's cross-cutting contract carries over from the simulator —
   chaos may change performance, never results — plus one native-only
   obligation: the injected decision {e sequences} are reproducible
   from (plan seed, P), and at one worker under a deterministic beat
   the whole run is. *)

module Hb_par = Hb_parallel.Hb_par

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let prog () = Test_runtime.make_irregular ~rows:400 ~max_size:12 ~seed:7

let serial () = Baselines.Serial_exec.run_program (prog ())

let cfg workers = { Hbc_core.Rt_config.default with workers }

let run_native ?request ?(beat = 16) workers =
  Hb_parallel.Native_run.run
    ?request
    ~beat:(Hb_parallel.Native_run.Every_polls beat)
    (cfg workers) (prog ())

(* A plan exercising every portable kind at once, hard enough that a run
   without the watchdog and monitor backstops would crawl or strand. *)
let heavy_plan =
  {
    Sim.Fault_plan.none with
    Sim.Fault_plan.seed = 0xC4A05;
    beat_drop_prob = 0.5;
    steal_fail_prob = 0.5;
    steal_fail_burst = 3;
    stall_prob = 0.3;
    stall_polls = 32;
    delay_wakeup_prob = 0.5;
  }

(* ---------------- plan codec and capability split ------------------ *)

let portable_codec_roundtrip () =
  let rng = Sim.Sim_rng.create 0xF0 in
  for _ = 1 to 25 do
    let plan = Sim.Fault_plan.random_portable rng in
    check_bool "portable plans name no simulator-only kinds" true
      (Sim.Fault_plan.simulator_only plan = []);
    check_bool "portable predicate agrees" true (Sim.Fault_plan.portable plan);
    (match Sim.Fault_plan.of_json (Sim.Fault_plan.to_json plan) with
    | Some back -> check_bool "portable plan round-trips" true (back = plan)
    | None -> Alcotest.fail "portable plan failed to parse back");
    (* The sim generator still round-trips and is still refused natively
       when it uses cycle-denominated kinds. *)
    let sim_plan = Sim.Fault_plan.random rng in
    match Sim.Fault_plan.of_json (Sim.Fault_plan.to_json sim_plan) with
    | Some back -> check_bool "sim plan round-trips" true (back = sim_plan)
    | None -> Alcotest.fail "sim plan failed to parse back"
  done;
  check_bool "jitter is simulator-only" true
    (Sim.Fault_plan.simulator_only
       { Sim.Fault_plan.none with Sim.Fault_plan.seed = 1; beat_drop_prob = 0.1; beat_jitter = 5 }
    <> [])

(* Two injectors built from the same (plan, P) answer an identical query
   sequence identically: the native chaos schedule is a pure function of
   the plan, not of wall time. *)
let injector_streams_reproducible () =
  let plan = heavy_plan in
  let drive () =
    let inj = Sim.Fault_injector.create plan ~num_workers:4 () in
    let log = ref [] in
    for round = 0 to 99 do
      let w = round mod 4 in
      log := Sim.Fault_injector.drop_beat inj ~worker:w :: !log;
      log := Sim.Fault_injector.steal_fails inj ~worker:w :: !log;
      log := (Sim.Fault_injector.stall_polls inj ~worker:w > 0) :: !log;
      log := Sim.Fault_injector.delay_wakeup inj ~worker:w :: !log
    done;
    !log
  in
  check_bool "identical decision sequences" true (drive () = drive ())

let capability_errors_are_precise () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s was accepted" name
  in
  expect_invalid "simulator-only plan on domains" (fun () ->
      let request =
        Hbc_core.Run_request.make
          ~fault_plan:{ Sim.Fault_plan.none with Sim.Fault_plan.seed = 1; beat_jitter = 100 }
          ()
      in
      run_native ~request 2);
  expect_invalid "pause under a wall-clock beat" (fun () ->
      Hb_parallel.Native_run.run
        ~request:(Hbc_core.Run_request.make ~pause_at:1_000 ())
        ~beat:(Hb_parallel.Native_run.Wall_us 50.0) (cfg 1) (prog ()));
  expect_invalid "pause with more than one worker" (fun () ->
      run_native ~request:(Hbc_core.Run_request.make ~pause_at:1_000 ()) 2)

(* --------------------------- chaos runs ---------------------------- *)

(* One worker, deterministic beat: the whole chaos run replays — equal
   results and equal injected-fault counts, run to run. *)
let chaos_deterministic_single_worker () =
  let go () =
    let request = Hbc_core.Run_request.make ~fault_plan:heavy_plan () in
    let r = run_native ~request 1 in
    let m = r.Sim.Run_result.metrics in
    ( r.Sim.Run_result.fingerprint,
      r.Sim.Run_result.work_cycles,
      m.Sim.Metrics.promotions,
      m.Sim.Metrics.faults_beats_dropped,
      m.Sim.Metrics.faults_steals_failed,
      m.Sim.Metrics.faults_stalls,
      m.Sim.Metrics.faults_stall_cycles,
      Sim.Metrics.downgrade_count m )
  in
  check_bool "chaos run replays byte-for-byte at P=1" true (go () = go ())

let chaos_never_changes_results () =
  let seq = serial () in
  List.iter
    (fun workers ->
      let request = Hbc_core.Run_request.make ~fault_plan:heavy_plan () in
      let r = run_native ~request workers in
      check_bool
        (Printf.sprintf "chaos result matches serial at P=%d" workers)
        true
        (Sim.Run_result.fingerprints_close seq r);
      check_int
        (Printf.sprintf "body work conserved at P=%d" workers)
        seq.Sim.Run_result.work_cycles r.Sim.Run_result.work_cycles;
      check_bool
        (Printf.sprintf "faults actually injected at P=%d" workers)
        true
        (Sim.Metrics.faults_injected r.Sim.Run_result.metrics > 0))
    [ 1; 2; 4 ]

(* Every wakeup suppressed: progress then rests entirely on the monitor's
   bounded park timeout. The run must still finish, correctly. *)
let suppressed_wakeups_still_finish () =
  let seq = serial () in
  let plan =
    { Sim.Fault_plan.none with Sim.Fault_plan.seed = 3; delay_wakeup_prob = 1.0 }
  in
  let request = Hbc_core.Run_request.make ~fault_plan:plan () in
  let r = run_native ~request 4 in
  check_bool "all-wakeups-suppressed run matches serial" true
    (Sim.Run_result.fingerprints_close seq r)

(* Dense stalls with a hair-trigger watchdog: rung 1 must fire (polling
   downgrade, visible as Mechanism_downgrade and counted in metrics) and
   the run must still produce the serial answer. *)
let watchdog_downgrades_under_stalls () =
  let seq = serial () in
  let plan =
    {
      Sim.Fault_plan.none with
      Sim.Fault_plan.seed = 11;
      stall_prob = 1.0;
      stall_polls = 64;
    }
  in
  let sink = Obs.Trace.Sink.stream ~keep:(function
    | Obs.Trace.Mechanism_downgrade -> true
    | _ -> false) ()
  in
  let cfg = { (cfg 2) with Hbc_core.Rt_config.watchdog_k = 2 } in
  let request = Hbc_core.Run_request.make ~fault_plan:plan ~trace:sink () in
  let r =
    Hb_parallel.Native_run.run ~request ~beat:(Hb_parallel.Native_run.Every_polls 8) cfg (prog ())
  in
  check_bool "watchdog tripped" true (Sim.Metrics.downgrade_count r.Sim.Run_result.metrics > 0);
  check_bool "downgrade visible in the trace" true (r.Sim.Run_result.trace <> []);
  check_bool "downgraded run still correct" true (Sim.Run_result.fingerprints_close seq r)

(* ------------------------- pause / resume -------------------------- *)

let ck_of (r : Sim.Run_result.t) =
  match r.Sim.Run_result.termination with
  | Sim.Run_result.Paused ck -> ck
  | t -> Alcotest.failf "expected a pause, got %s" (Sim.Run_result.termination_to_string t)

let traced ?fault_plan ?pause_at ?resume_from () =
  let sink = Obs.Trace.Sink.stream () in
  let request = Hbc_core.Run_request.make ?fault_plan ~trace:sink ?pause_at ?resume_from () in
  let r = run_native ~request 1 in
  ( r,
    List.map
      (fun (rec_ : Obs.Trace.record) ->
        (rec_.Obs.Trace.time, rec_.Obs.Trace.worker, rec_.Obs.Trace.event))
      r.Sim.Run_result.trace )

let pause_resume_byte_identical () =
  let full, full_evs = traced () in
  let paused, pre = traced ~pause_at:500 () in
  let ck = ck_of paused in
  let resumed, post = traced ~resume_from:ck () in
  check_bool "resume finished" true
    (resumed.Sim.Run_result.termination = Sim.Run_result.Finished);
  check_bool "fingerprint identical" true
    (resumed.Sim.Run_result.fingerprint = full.Sim.Run_result.fingerprint);
  check_int "work identical" full.Sim.Run_result.work_cycles resumed.Sim.Run_result.work_cycles;
  check_int "promotions identical"
    full.Sim.Run_result.metrics.Sim.Metrics.promotions
    resumed.Sim.Run_result.metrics.Sim.Metrics.promotions;
  check_int "episodes tile the stream" (List.length full_evs)
    (List.length pre + List.length post);
  check_bool "concatenation is the uninterrupted stream" true (pre @ post = full_evs)

(* The checkpoint must survive its codec: what the resume sees is the
   serialized form, exactly as a crash-recovery path would read it. *)
let pause_resume_through_codec () =
  let paused, _ = traced ~pause_at:500 () in
  let ck = ck_of paused in
  match Sim.Checkpoint_state.of_string (Sim.Checkpoint_state.to_string ck) with
  | Error e -> Alcotest.failf "native checkpoint did not round-trip: %s" e
  | Ok ck' ->
      check_bool "codec round-trip is byte-exact" true (Sim.Checkpoint_state.equal ck ck');
      let resumed, _ = traced ~resume_from:ck' () in
      let full, _ = traced () in
      check_bool "resume from decoded checkpoint matches" true
        (resumed.Sim.Run_result.fingerprint = full.Sim.Run_result.fingerprint)

(* Chaos and pause compose at one worker: the same plan on both sides of
   the boundary replays to the same final answer. *)
let pause_resume_under_chaos () =
  (* Dropped beats let adaptive chunking grow, so a chaos run crosses far
     fewer scheduling points than a fault-free one — pause early enough
     that the boundary is reached even with maximal chunks (the outer
     loop alone contributes one point per row). *)
  let plan = { heavy_plan with Sim.Fault_plan.delay_wakeup_prob = 0.0 } in
  let full, _ = traced ~fault_plan:plan () in
  let paused, _ = traced ~fault_plan:plan ~pause_at:300 () in
  let resumed, _ = traced ~fault_plan:plan ~resume_from:(ck_of paused) () in
  check_bool "chaos pause/resume matches the uninterrupted chaos run" true
    (resumed.Sim.Run_result.fingerprint = full.Sim.Run_result.fingerprint
    && resumed.Sim.Run_result.work_cycles = full.Sim.Run_result.work_cycles)

let resume_divergence_detected () =
  let paused, _ = traced ~pause_at:500 () in
  let ck = ck_of paused in
  let tampered = { ck with Sim.Checkpoint_state.work_cycles = ck.Sim.Checkpoint_state.work_cycles + 1 } in
  let resumed, _ = traced ~resume_from:tampered () in
  match resumed.Sim.Run_result.termination with
  | Sim.Run_result.Guard_aborted reason ->
      check_bool "names the divergence" true
        (String.length reason >= 17 && String.sub reason 0 17 = "resume-divergence")
  | t -> Alcotest.failf "tampered checkpoint accepted: %s" (Sim.Run_result.termination_to_string t)

(* ----------------------- park/wake stress -------------------------- *)

(* Repeated short pools: every run exercises park, ticket hand-off, the
   monitor backstop and shutdown wake. A lost wakeup here deadlocks. *)
let park_wake_stress () =
  for round = 1 to 3 do
    Hb_par.with_pool ~heartbeat_us:30.0 ~num_domains:4 (fun pool ->
        let n = 50_000 in
        let got =
          Hb_par.parallel_reduce pool ~lo:0 ~hi:n ~init:0
            ~body:(fun a i -> a + (i mod 7))
            ~combine:( + )
        in
        let want = ref 0 in
        for i = 0 to n - 1 do
          want := !want + (i mod 7)
        done;
        check_int (Printf.sprintf "round %d sum" round) !want got)
  done

let suite =
  [
    Alcotest.test_case "plan: portable codec round-trip" `Quick portable_codec_roundtrip;
    Alcotest.test_case "injector: streams reproducible" `Quick injector_streams_reproducible;
    Alcotest.test_case "capability errors precise" `Quick capability_errors_are_precise;
    Alcotest.test_case "chaos: deterministic at P=1" `Slow chaos_deterministic_single_worker;
    Alcotest.test_case "chaos: never changes results" `Slow chaos_never_changes_results;
    Alcotest.test_case "chaos: suppressed wakeups recover" `Slow suppressed_wakeups_still_finish;
    Alcotest.test_case "watchdog: downgrades under stalls" `Slow watchdog_downgrades_under_stalls;
    Alcotest.test_case "pause/resume: byte-identical" `Slow pause_resume_byte_identical;
    Alcotest.test_case "pause/resume: codec round-trip" `Slow pause_resume_through_codec;
    Alcotest.test_case "pause/resume: under chaos" `Slow pause_resume_under_chaos;
    Alcotest.test_case "pause/resume: divergence detected" `Slow resume_divergence_detected;
    Alcotest.test_case "park/wake: pool stress" `Slow park_wake_stress;
  ]
