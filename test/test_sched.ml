(* Tests for the backend-agnostic scheduler core (lib/sched) and its two
   instantiations: policy units, leftover-walk units, Ws_deque conformance
   against the simulator's sequential Chase–Lev model, sim determinism
   (pinning the functor extraction), sim-vs-domains fingerprint parity on
   the differential workloads, sanitizer-clean native traces, and the
   Sched_run facade's dispatch. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let qt = QCheck_alcotest.to_alcotest

(* ---------------------------- policy ------------------------------ *)

let policy_owned_suffix () =
  Alcotest.(check (list int)) "no forbidden" [ 0; 1; 2 ] (Sched.Policy.owned_suffix ~forbidden:(-1) [ 0; 1; 2 ]);
  Alcotest.(check (list int)) "drops through forbidden" [ 2 ] (Sched.Policy.owned_suffix ~forbidden:1 [ 0; 1; 2 ]);
  Alcotest.(check (list int)) "forbidden leaf" [] (Sched.Policy.owned_suffix ~forbidden:2 [ 0; 1; 2 ]);
  Alcotest.(check (list int)) "forbidden absent" [] (Sched.Policy.owned_suffix ~forbidden:7 [ 0; 1; 2 ])

let policy_choose_target () =
  let splittable o = o = 1 || o = 2 in
  Alcotest.(check (option int)) "outer first" (Some 1)
    (Sched.Policy.choose_target ~policy:Sched.Policy.Outer_loop_first ~splittable [ 0; 1; 2 ]);
  Alcotest.(check (option int)) "inner first" (Some 2)
    (Sched.Policy.choose_target ~policy:Sched.Policy.Innermost_first ~splittable [ 0; 1; 2 ]);
  Alcotest.(check (option int)) "none splittable" None
    (Sched.Policy.choose_target ~policy:Sched.Policy.Outer_loop_first
       ~splittable:(fun _ -> false)
       [ 0; 1; 2 ]);
  check_bool "invert is an involution" true
    (Sched.Policy.invert (Sched.Policy.invert Sched.Policy.Outer_loop_first)
    = Sched.Policy.Outer_loop_first)

let policy_split_point () =
  (* Upper-rounded midpoint: the lower half is never larger. *)
  check_int "even" 15 (Sched.Policy.split_point ~lo:10 ~hi:20);
  check_int "odd rounds up" 16 (Sched.Policy.split_point ~lo:10 ~hi:21);
  check_int "two iterations split 1/1" 11 (Sched.Policy.split_point ~lo:10 ~hi:12)

let policy_backend_kind () =
  check_bool "sim round-trips" true
    (Sched.Policy.backend_kind_of_string (Sched.Policy.backend_kind_to_string Sched.Policy.Sim)
    = Ok Sched.Policy.Sim);
  check_bool "domains round-trips" true
    (Sched.Policy.backend_kind_of_string (Sched.Policy.backend_kind_to_string Sched.Policy.Domains)
    = Ok Sched.Policy.Domains);
  check_bool "junk rejected" true
    (match Sched.Policy.backend_kind_of_string "cuda" with Error _ -> true | Ok _ -> false)

(* ------------------------- leftover walk -------------------------- *)

let walk_runs_in_order () =
  let log = ref [] in
  Sched.Leftover_walk.run
    ~steps:[| `A; `B; `C |]
    ~is_call:(fun _ -> None)
    ~exec:(fun s ->
      log := s :: !log;
      Sched.Leftover_walk.Next);
  check_bool "all steps in order" true (List.rev !log = [ `A; `B; `C ])

let walk_skip_past () =
  (* A promotion of ancestor 1 inside step 0 skips everything up to and
     including 1's own Call_slice. *)
  let log = ref [] in
  let steps = [| `Call 2; `Iv; `Call 1; `Tail; `Call 0 |] in
  Sched.Leftover_walk.run ~steps
    ~is_call:(fun s -> match s with `Call o -> Some o | _ -> None)
    ~exec:(fun s ->
      log := s :: !log;
      match s with `Call 2 -> Sched.Leftover_walk.Skip_past 1 | _ -> Sched.Leftover_walk.Next);
  check_bool "resumed after Call 1" true (List.rev !log = [ `Call 2; `Tail; `Call 0 ])

let walk_missing_call () =
  check_bool "missing call raises" true
    (try
       Sched.Leftover_walk.run ~steps:[| `X |]
         ~is_call:(fun _ -> None)
         ~exec:(fun _ -> Sched.Leftover_walk.Skip_past 3);
       false
     with Sched.Leftover_walk.Missing_call 3 -> true)

(* --------------------- Ws_deque conformance ----------------------- *)

(* The native Chase–Lev deque against the simulator's sequential model
   (which is also the sanitizer's shadow-replay structure): any
   single-threaded op sequence must produce identical results. The
   concurrent side is covered by test_parallel's exactly-once tests and
   by the sanitizer's shadow replay of linearized native traces below. *)
let ws_deque_matches_model =
  QCheck.Test.make ~name:"Ws_deque = Sim.Deque on sequential op sequences" ~count:500
    QCheck.(list (int_range 0 2))
    (fun ops ->
      let d = Hb_parallel.Ws_deque.create () in
      let m = Sim.Deque.create () in
      let next = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
              incr next;
              Hb_parallel.Ws_deque.push d !next;
              Sim.Deque.push_bottom m !next;
              Hb_parallel.Ws_deque.size d = Sim.Deque.length m
          | 1 -> Hb_parallel.Ws_deque.pop d = Sim.Deque.pop_bottom m
          | _ -> Hb_parallel.Ws_deque.steal d = Sim.Deque.steal m)
        ops)

(* ------------------ sim determinism (extraction pin) -------------- *)

(* Pins the functor extraction: the sim instantiation of the shared core
   is a deterministic function of (config, program) — two runs agree to
   the byte on result and trace. Any backend leakage into the policy
   core (real time, domain identity) would break this first. *)
let sim_runs_byte_identical () =
  let p = Test_runtime.make_irregular ~rows:120 ~max_size:10 ~seed:42 in
  let cfg = { Hbc_core.Rt_config.default with workers = 4 } in
  let run () =
    let sink = Obs.Trace.Sink.stream () in
    let request = Hbc_core.Run_request.make ~trace:sink () in
    Hbc_core.Executor.run ~request cfg p
  in
  let a = run () and b = run () in
  check_int "makespan" a.Sim.Run_result.makespan b.Sim.Run_result.makespan;
  check_bool "fingerprint" true
    (a.Sim.Run_result.fingerprint = b.Sim.Run_result.fingerprint);
  check_int "promotions" a.Sim.Run_result.metrics.Sim.Metrics.promotions
    b.Sim.Run_result.metrics.Sim.Metrics.promotions;
  check_bool "traces identical" true (a.Sim.Run_result.trace = b.Sim.Run_result.trace)

(* ------------------- sim vs domains parity ------------------------ *)

let native_request () = Hbc_core.Run_request.make ~backend:Sched.Policy.Domains ()

let parity_on workers (Ir.Program.Any p) =
  let seq = Baselines.Serial_exec.run_program p in
  let cfg = { Hbc_core.Rt_config.default with workers } in
  let sim = Hbc_core.Executor.run cfg p in
  let native =
    Sched_run.run ~request:(native_request ()) ~beat:(Hb_parallel.Native_run.Wall_us 50.0)
      (Sched_run.Hbc cfg) p
  in
  check_bool
    (Printf.sprintf "sim matches seq at P=%d" workers)
    true
    (Sim.Run_result.fingerprints_close seq sim);
  check_bool
    (Printf.sprintf "domains matches seq at P=%d" workers)
    true
    (Sim.Run_result.fingerprints_close seq native);
  check_bool
    (Printf.sprintf "domains matches sim at P=%d" workers)
    true
    (Sim.Run_result.fingerprints_close sim native);
  check_int
    (Printf.sprintf "native body work = serial work at P=%d" workers)
    seq.Sim.Run_result.work_cycles native.Sim.Run_result.work_cycles

let parity_irregular () =
  List.iter
    (fun workers ->
      parity_on workers (Ir.Program.Any (Test_runtime.make_irregular ~rows:400 ~max_size:12 ~seed:7)))
    [ 1; 2; 4 ]

let parity_registry () =
  List.iter
    (fun name ->
      let entry = Workloads.Registry.find name in
      List.iter
        (fun workers -> parity_on workers (entry.Workloads.Registry.make 0.05))
        [ 1; 2; 4 ])
    [ "plus-reduce-array"; "spmv-powerlaw" ]

(* ------------------ sanitizer on native traces -------------------- *)

(* A traced domains run must satisfy the same invariant set as a simulated
   one: work conservation (every iteration exactly once), shadow Chase–Lev
   deque replay, promotion-policy replay, chunk-rule replay, and clock
   sanity over the linearized stream. *)
let native_trace_sanitizer_clean () =
  let p = Test_runtime.make_irregular ~rows:400 ~max_size:12 ~seed:11 in
  let cfg = { Hbc_core.Rt_config.default with workers = 2 } in
  let checker = Sanitizer.Checker.create (Sanitizer.Checker.config_of_rt cfg) in
  let request =
    Hbc_core.Run_request.make ~backend:Sched.Policy.Domains
      ~trace:(Sanitizer.Checker.sink checker) ~sanitize:true ()
  in
  (* A deterministic poll-count beat fires densely enough that the run
     promotes even on a loaded single-core machine. *)
  let r =
    Hb_parallel.Native_run.run ~request ~beat:(Hb_parallel.Native_run.Every_polls 16) cfg p
  in
  Sanitizer.Checker.finish checker;
  check_bool
    (Printf.sprintf "sanitizer clean: %s" (Sanitizer.Checker.summary checker))
    true (Sanitizer.Checker.ok checker);
  check_bool "native run promoted" true (r.Sim.Run_result.metrics.Sim.Metrics.promotions > 0);
  let seq = Baselines.Serial_exec.run_program p in
  check_bool "traced native run still correct" true (Sim.Run_result.fingerprints_close seq r)

(* --------------------------- facade ------------------------------- *)

let facade_dispatch () =
  let p = Test_runtime.make_irregular ~rows:60 ~max_size:8 ~seed:3 in
  let seq = Sched_run.run Sched_run.Serial p in
  let sim_hbc = Sched_run.run Sched_run.hbc p in
  check_bool "facade serial = facade hbc" true (Sim.Run_result.fingerprints_close seq sim_hbc);
  let tpal = Sched_run.run (Sched_run.Tpal { chunk = 16 }) p in
  check_bool "facade tpal" true (Sim.Run_result.fingerprints_close seq tpal);
  check_bool "omp on domains rejected" true
    (try
       ignore
         (Sched_run.run ~backend:Sched.Policy.Domains
            (Sched_run.Openmp (Baselines.Openmp.dynamic ()))
            p);
       false
     with Invalid_argument _ -> true);
  (* Portable fault kinds now run natively; only simulator-only kinds
     (cycle-granular jitter, cycle-counted stalls) are refused. *)
  let chaos =
    let request =
      Hbc_core.Run_request.make ~backend:Sched.Policy.Domains
        ~fault_plan:{ Sim.Fault_plan.none with seed = 1; beat_drop_prob = 0.5 } ()
    in
    Sched_run.run ~request ~beat:(Hb_parallel.Native_run.Every_polls 32) Sched_run.hbc p
  in
  check_bool "portable faults run on domains" true (Sim.Run_result.fingerprints_close seq chaos);
  check_bool "simulator-only faults on domains rejected" true
    (try
       let request =
         Hbc_core.Run_request.make ~backend:Sched.Policy.Domains
           ~fault_plan:{ Sim.Fault_plan.none with seed = 1; beat_drop_prob = 0.5; beat_jitter = 100 }
           ()
       in
       ignore (Sched_run.run ~request Sched_run.hbc p);
       false
     with Invalid_argument _ -> true)

let request_signature_keyed_by_backend () =
  let sim = Hbc_core.Run_request.make () in
  let dom = Hbc_core.Run_request.make ~backend:Sched.Policy.Domains () in
  check_bool "backends never alias in the journal" true
    (Hbc_core.Run_request.signature sim <> Hbc_core.Run_request.signature dom)

let suite =
  [
    Alcotest.test_case "policy: owned suffix" `Quick policy_owned_suffix;
    Alcotest.test_case "policy: choose target" `Quick policy_choose_target;
    Alcotest.test_case "policy: split point" `Quick policy_split_point;
    Alcotest.test_case "policy: backend kind strings" `Quick policy_backend_kind;
    Alcotest.test_case "leftover walk: in order" `Quick walk_runs_in_order;
    Alcotest.test_case "leftover walk: skip past" `Quick walk_skip_past;
    Alcotest.test_case "leftover walk: missing call" `Quick walk_missing_call;
    qt ws_deque_matches_model;
    Alcotest.test_case "sim: byte-identical reruns" `Quick sim_runs_byte_identical;
    Alcotest.test_case "parity: irregular nest, P=1,2,4" `Slow parity_irregular;
    Alcotest.test_case "parity: registry workloads, P=1,2,4" `Slow parity_registry;
    Alcotest.test_case "native trace: sanitizer clean" `Slow native_trace_sanitizer_clean;
    Alcotest.test_case "facade: dispatch and guards" `Quick facade_dispatch;
    Alcotest.test_case "request: backend in signature" `Quick request_signature_keyed_by_backend;
  ]
