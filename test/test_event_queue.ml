(* Differential tests for the calendar-queue event queue against the old
   binary-heap semantics: pops come out in strictly increasing (time, seq)
   order — modeled here by a stable sorted list — on random schedules that
   cover simultaneous events, behind-cursor (overdue) pushes, and
   far-future events beyond the wheel horizon in the sorted overflow
   bucket. The engine's pause-at boundary peeks [top_time] before every
   dispatch decision, so peek idempotence is part of the contract too. *)

let check_int = Alcotest.(check int)

(* ------------------------- reference model ------------------------ *)

(* (time, seq, code), kept sorted by (time, seq) — the heap's pop order. *)
let model_insert (t, s, c) model =
  let rec go = function
    | [] -> [ (t, s, c) ]
    | ((t', s', _) as hd) :: tl ->
        if t' > t || (t' = t && s' > s) then (t, s, c) :: hd :: tl else hd :: go tl
  in
  go model

(* Drive the queue and the model through the same op list, comparing every
   peek triple. Pushes are timed relative to the last popped time (the
   engine's dispatch cursor): [delta] < 0 exercises the overdue lane,
   small deltas the level-0 wheel, block-sized deltas level 1, and
   beyond-horizon deltas the sorted overflow. Returns false on the first
   divergence. *)
let run_ops ops =
  let q = Sim.Event_queue.create () in
  let model = ref [] in
  let seq = ref 0 in
  let last = ref 0 in
  let ok = ref true in
  let pop () =
    if not (Sim.Event_queue.is_empty q) then begin
      (* Double peek: the engine's pause boundary reads top_time before
         deciding to drop, so peeks must not disturb the queue. *)
      let t0 = Sim.Event_queue.top_time q in
      let t = Sim.Event_queue.top_time q in
      let s = Sim.Event_queue.top_seq q in
      let c = Sim.Event_queue.top_code q in
      if t0 <> t then ok := false;
      (match !model with
      | [] -> ok := false
      | (mt, ms, mc) :: rest ->
          if t <> mt || s <> ms || c <> mc then ok := false;
          Sim.Event_queue.drop q;
          model := rest;
          last := t)
    end
  in
  List.iter
    (fun op ->
      match op with
      | None -> pop ()
      | Some delta ->
          let time = Stdlib.max 0 (!last + delta) in
          let code = !seq land 0xffff in
          Sim.Event_queue.push q ~time ~seq:!seq ~code;
          model := model_insert (time, !seq, code) !model;
          incr seq)
    ops;
  while not (Sim.Event_queue.is_empty q) do
    pop ()
  done;
  if !model <> [] then ok := false;
  if Sim.Event_queue.length q <> 0 then ok := false;
  !ok

(* Delta generator spanning every structural lane of the queue: 0 forces
   simultaneous events (FIFO tie-break), small positives stay in level 0,
   mid-range crosses level-1 blocks (and the 30k heartbeat re-arm
   distance), huge ones land in the overflow bucket, negatives go
   overdue. *)
let delta_gen =
  QCheck.Gen.frequency
    [
      (3, QCheck.Gen.return 0);
      (6, QCheck.Gen.int_range 1 300);
      (4, QCheck.Gen.int_range 300 70_000);
      (1, QCheck.Gen.int_range 70_000 2_000_000);
      (2, QCheck.Gen.int_range (-500) (-1));
    ]

let op_gen =
  QCheck.Gen.frequency
    [ (3, QCheck.Gen.map (fun d -> Some d) delta_gen); (2, QCheck.Gen.return None) ]

let ops_arbitrary =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map (function None -> "pop" | Some d -> string_of_int d) ops))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 400) op_gen)

let differential_random =
  QCheck.Test.make ~name:"calendar queue = heap order on random schedules" ~count:300
    ops_arbitrary run_ops

(* ------------------------- directed cases ------------------------- *)

(* Simultaneous events pop FIFO by seq, regardless of arrival lane. *)
let simultaneous_fifo () =
  let q = Sim.Event_queue.create () in
  for s = 0 to 63 do
    Sim.Event_queue.push q ~time:1000 ~seq:s ~code:s
  done;
  for s = 0 to 63 do
    check_int "time" 1000 (Sim.Event_queue.top_time q);
    check_int "fifo seq" s (Sim.Event_queue.top_seq q);
    check_int "fifo code" s (Sim.Event_queue.top_code q);
    Sim.Event_queue.drop q
  done;
  Alcotest.(check bool) "drained" true (Sim.Event_queue.is_empty q)

(* Far-future events really take the overflow lane, then migrate out in
   (time, seq) order as the window advances past them. *)
let overflow_migration () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.push q ~time:0 ~seq:0 ~code:0;
  (* Beyond the 64k-cycle horizon from a window anchored at 0. *)
  Sim.Event_queue.push q ~time:10_000_000 ~seq:1 ~code:1;
  Sim.Event_queue.push q ~time:9_999_999 ~seq:2 ~code:2;
  Sim.Event_queue.push q ~time:10_000_000 ~seq:3 ~code:3;
  check_int "overflowed" 3 (Sim.Event_queue.overflow_length q);
  check_int "first" 0 (Sim.Event_queue.top_seq q);
  Sim.Event_queue.drop q;
  check_int "earliest far" 2 (Sim.Event_queue.top_seq q);
  Sim.Event_queue.drop q;
  check_int "fifo at equal far time" 1 (Sim.Event_queue.top_seq q);
  Sim.Event_queue.drop q;
  check_int "last" 3 (Sim.Event_queue.top_seq q);
  Sim.Event_queue.drop q;
  check_int "empty" 0 (Sim.Event_queue.length q)

(* A push behind the dispatch cursor is served before everything ahead of
   it (the overdue lane), still ordered among its own. *)
let overdue_served_first () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.push q ~time:500 ~seq:0 ~code:0;
  Sim.Event_queue.push q ~time:600 ~seq:1 ~code:1;
  check_int "front" 0 (Sim.Event_queue.top_seq q);
  Sim.Event_queue.drop q;
  (* Cursor now at 500; these land behind it. *)
  Sim.Event_queue.push q ~time:100 ~seq:2 ~code:2;
  Sim.Event_queue.push q ~time:50 ~seq:3 ~code:3;
  check_int "overdue lane" 2 (Sim.Event_queue.overdue_length q);
  check_int "earliest overdue" 3 (Sim.Event_queue.top_seq q);
  Sim.Event_queue.drop q;
  check_int "next overdue" 2 (Sim.Event_queue.top_seq q);
  Sim.Event_queue.drop q;
  check_int "back to wheel" 1 (Sim.Event_queue.top_seq q);
  Sim.Event_queue.drop q;
  check_int "empty" 0 (Sim.Event_queue.length q)

(* Emptying the queue and pushing a distant time re-anchors the window
   there without scanning the gap: O(1) behavior is not directly
   observable here, but the ordering across re-anchors is. *)
let reanchor_after_drain () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.push q ~time:3 ~seq:0 ~code:0;
  Sim.Event_queue.drop q;
  Sim.Event_queue.push q ~time:1_000_000_007 ~seq:1 ~code:1;
  check_int "re-anchored" 1_000_000_007 (Sim.Event_queue.top_time q);
  Sim.Event_queue.push q ~time:1_000_000_005 ~seq:2 ~code:2;
  check_int "behind new anchor served first" 2 (Sim.Event_queue.top_seq q);
  Sim.Event_queue.drop q;
  Sim.Event_queue.drop q;
  Alcotest.(check bool) "drained" true (Sim.Event_queue.is_empty q)

(* The engine's pause path peeks top_time between dispatches; interleaved
   peeks at a pause-like boundary must not reorder anything. *)
let peek_stability_across_boundary () =
  let q = Sim.Event_queue.create () in
  List.iteri
    (fun i t -> Sim.Event_queue.push q ~time:t ~seq:i ~code:i)
    [ 10; 10; 2_000; 40_000; 40_000; 5_000_000 ];
  let expected = [ (10, 0); (10, 1); (2_000, 2); (40_000, 3); (40_000, 4); (5_000_000, 5) ] in
  List.iter
    (fun (t, s) ->
      for _ = 1 to 3 do
        check_int "peek time stable" t (Sim.Event_queue.top_time q)
      done;
      check_int "seq" s (Sim.Event_queue.top_seq q);
      Sim.Event_queue.drop q)
    expected;
  check_int "empty" 0 (Sim.Event_queue.length q)

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    qt differential_random;
    Alcotest.test_case "simultaneous events pop FIFO" `Quick simultaneous_fifo;
    Alcotest.test_case "overflow bucket migrates in order" `Quick overflow_migration;
    Alcotest.test_case "overdue lane served first" `Quick overdue_served_first;
    Alcotest.test_case "window re-anchors after drain" `Quick reanchor_after_drain;
    Alcotest.test_case "peeks stable at pause boundaries" `Quick peek_stability_across_boundary;
  ]
