(* Multi-tenant job server: admission, fairness, deadlines, breakers,
   metered promotion budgets, and the determinism they all hang off. *)

let check = Alcotest.check

let tenant = Serve.Server.tenant_default

let base cfg = { Serve.Server.default_config with Serve.Server.sanitize = true; seed = 42 } |> cfg

let run cfg = Serve.Server.run (base cfg)

let outcomes (r : Serve.Server.result) =
  List.map (fun (j : Serve.Server.job_report) -> (j.Serve.Server.tenant, j.Serve.Server.outcome)) r.Serve.Server.reports

(* ------------------------------------------------------------------ *)
(* Arrival processes.                                                  *)
(* ------------------------------------------------------------------ *)

let arrival_roundtrip () =
  List.iter
    (fun p ->
      let s = Serve.Arrival.to_string p in
      match Serve.Arrival.of_string s with
      | Some q -> check Alcotest.string "roundtrip" s (Serve.Arrival.to_string q)
      | None -> Alcotest.failf "of_string failed on %s" s)
    [
      Serve.Arrival.Poisson { mean_gap = 800.0 };
      Serve.Arrival.Burst { period = 5_000; size = 4 };
      Serve.Arrival.Adversarial { quiet = 20_000; burst = 8 };
    ];
  check Alcotest.bool "garbage rejected" true (Serve.Arrival.of_string "warp:9" = None)

let arrival_monotone_and_seeded () =
  let times p seed =
    Serve.Arrival.times p ~rng:(Sim.Sim_rng.create seed) ~jobs:32
  in
  List.iter
    (fun p ->
      let ts = times p 7 in
      check Alcotest.int "count" 32 (List.length ts);
      ignore
        (List.fold_left
           (fun prev t ->
             check Alcotest.bool "nondecreasing" true (t >= prev && t >= 0);
             t)
           0 ts);
      check Alcotest.bool "seed-deterministic" true (ts = times p 7))
    [
      Serve.Arrival.Poisson { mean_gap = 500.0 };
      Serve.Arrival.Burst { period = 100; size = 3 };
      Serve.Arrival.Adversarial { quiet = 1_000; burst = 5 };
    ]

(* ------------------------------------------------------------------ *)
(* Breaker state machine.                                              *)
(* ------------------------------------------------------------------ *)

let breaker_trip_and_recover () =
  let cfg = { Serve.Breaker.default_config with Serve.Breaker.failure_threshold = 2; cooldown = 100; probe_budget = 1 } in
  let b = Serve.Breaker.create ~config:cfg ~on_transition:(fun ~from_state:_ ~to_state:_ -> ()) () in
  check Alcotest.bool "closed admits" true (Serve.Breaker.admit b ~now:0);
  Serve.Breaker.record b ~now:1 ~ok:false;
  check Alcotest.bool "one failure still closed" true (Serve.Breaker.admit b ~now:2);
  Serve.Breaker.record b ~now:3 ~ok:false;
  check Alcotest.bool "threshold trips open" false (Serve.Breaker.admit b ~now:4);
  check Alcotest.bool "still cooling" false (Serve.Breaker.admit b ~now:50);
  check Alcotest.bool "cooldown over: probe admitted" true (Serve.Breaker.admit b ~now:104);
  check Alcotest.bool "probe budget spent" false (Serve.Breaker.admit b ~now:105);
  Serve.Breaker.record b ~now:110 ~ok:true;
  check Alcotest.bool "probe success closes" true (Serve.Breaker.admit b ~now:111)

let breaker_backoff_grows () =
  let cfg =
    { Serve.Breaker.failure_threshold = 1; cooldown = 100; backoff = 2.0; probe_budget = 1 }
  in
  let b = Serve.Breaker.create ~config:cfg ~on_transition:(fun ~from_state:_ ~to_state:_ -> ()) () in
  Serve.Breaker.record b ~now:0 ~ok:false;
  check Alcotest.bool "first cooldown 100" true (Serve.Breaker.admit b ~now:100);
  Serve.Breaker.record b ~now:101 ~ok:false;
  (* second open: cooldown doubles *)
  check Alcotest.bool "not after 100" false (Serve.Breaker.admit b ~now:201);
  check Alcotest.bool "after 200" true (Serve.Breaker.admit b ~now:301)

(* Half-open probe accounting: only outcomes of jobs admitted AS probes
   may close the breaker; pre-trip stragglers are stale evidence. *)
let breaker_stale_success_not_probe () =
  let cfg =
    { Serve.Breaker.default_config with Serve.Breaker.failure_threshold = 2; cooldown = 100; probe_budget = 2 }
  in
  let b = Serve.Breaker.create ~config:cfg ~on_transition:(fun ~from_state:_ ~to_state:_ -> ()) () in
  Serve.Breaker.record b ~now:1 ~ok:false;
  Serve.Breaker.record b ~now:2 ~ok:false;
  check Alcotest.bool "tripped" true (Serve.Breaker.state b = Serve.Breaker.Open);
  check Alcotest.bool "probe admitted after cooldown" true (Serve.Breaker.admit b ~now:102);
  check Alcotest.bool "half-open" true (Serve.Breaker.state b = Serve.Breaker.Half_open);
  (* jobs admitted before the trip finish during the half-open window:
     their successes must not count toward re-closing *)
  Serve.Breaker.record ~probe:false b ~now:103 ~ok:true;
  Serve.Breaker.record ~probe:false b ~now:104 ~ok:true;
  check Alcotest.bool "stale successes ignored" true (Serve.Breaker.state b = Serve.Breaker.Half_open);
  check Alcotest.bool "second probe admitted" true (Serve.Breaker.admit b ~now:105);
  Serve.Breaker.record b ~now:106 ~ok:true;
  check Alcotest.bool "one probe success is not enough" true
    (Serve.Breaker.state b = Serve.Breaker.Half_open);
  Serve.Breaker.record b ~now:107 ~ok:true;
  check Alcotest.bool "probe budget of successes closes" true
    (Serve.Breaker.state b = Serve.Breaker.Closed)

(* trip -> cooldown -> half-open -> re-trip under simultaneous arrivals:
   two arrivals at the same instant share the probe budget, a failing
   probe re-opens with doubled backoff, and a late probe success while
   re-opened changes nothing. *)
let breaker_retrip_under_simultaneous_arrivals () =
  let cfg =
    {
      Serve.Breaker.failure_threshold = 2;
      cooldown = 100;
      backoff = 2.0;
      probe_budget = 2;
    }
  in
  let opens = ref 0 in
  let b =
    Serve.Breaker.create ~config:cfg
      ~on_transition:(fun ~from_state:_ ~to_state -> if to_state = Serve.Breaker.Open then incr opens)
      ()
  in
  (* simultaneous failures trip once *)
  Serve.Breaker.record b ~now:1 ~ok:false;
  Serve.Breaker.record b ~now:1 ~ok:false;
  check Alcotest.int "one open" 1 !opens;
  check Alcotest.int "retry_at is the cooldown end" 101 (Serve.Breaker.retry_at b ~now:50);
  check Alcotest.bool "cooling: both simultaneous arrivals denied" false
    (Serve.Breaker.admit b ~now:50 || Serve.Breaker.admit b ~now:50);
  (* cooldown over: two simultaneous arrivals share the probe budget *)
  check Alcotest.bool "first probe" true (Serve.Breaker.admit b ~now:101);
  check Alcotest.bool "second probe" true (Serve.Breaker.admit b ~now:101);
  check Alcotest.bool "budget spent: third denied" false (Serve.Breaker.admit b ~now:101);
  (* one probe fails: re-trip with doubled cooldown *)
  Serve.Breaker.record b ~now:110 ~ok:false;
  check Alcotest.int "re-tripped" 2 !opens;
  (* the surviving probe's late success changes nothing while open *)
  Serve.Breaker.record b ~now:111 ~ok:true;
  check Alcotest.bool "still open" true (Serve.Breaker.state b = Serve.Breaker.Open);
  check Alcotest.int "backoff doubles the retry" 310 (Serve.Breaker.retry_at b ~now:120);
  check Alcotest.bool "doubled cooldown still holds" false (Serve.Breaker.admit b ~now:309);
  check Alcotest.bool "admits after the doubled cooldown" true (Serve.Breaker.admit b ~now:310)

(* ------------------------------------------------------------------ *)
(* Promotion meter.                                                    *)
(* ------------------------------------------------------------------ *)

let meter_refill_grant_refund () =
  let refills = ref [] in
  let cfg = { Serve.Meter.refill_period = 100; refill_amount = 10; burst_cap = 15 } in
  let m =
    Serve.Meter.create ~config:cfg
      ~weights:[| 1; 2 |]
      ~emit:(fun ~time ~tenant ~amount -> refills := (time, tenant, amount) :: !refills)
      ()
  in
  Serve.Meter.advance m ~now:0;
  check Alcotest.int "epoch 0 refill" 10 (Serve.Meter.balance m ~tenant:0);
  check Alcotest.int "weighted refill" 20 (Serve.Meter.balance m ~tenant:1);
  check Alcotest.int "grant min(want,balance)" 10 (Serve.Meter.grant m ~tenant:0 ~want:64);
  check Alcotest.int "drained" 0 (Serve.Meter.balance m ~tenant:0);
  Serve.Meter.refund m ~now:5 ~tenant:0 4;
  check Alcotest.int "refund credits" 4 (Serve.Meter.balance m ~tenant:0);
  Serve.Meter.advance m ~now:250;
  (* epochs 1 and 2 credit 10 each, clamped at burst cap 15 *)
  check Alcotest.int "burst cap" 15 (Serve.Meter.balance m ~tenant:0);
  check Alcotest.bool "every refill emitted" true (List.length !refills > 0);
  List.iter (fun (_, _, a) -> check Alcotest.bool "positive" true (a > 0)) !refills

(* ------------------------------------------------------------------ *)
(* Admission queue.                                                    *)
(* ------------------------------------------------------------------ *)

let admission_zero_capacity () =
  let q = Serve.Admission.create ~capacity:0 ~weights:[| 1; 1 |] in
  check Alcotest.bool "offer refused" false (Serve.Admission.offer q ~tenant:0 ~priority:0 "a");
  check Alcotest.int "empty" 0 (Serve.Admission.length q)

let admission_weighted_fairness () =
  let q = Serve.Admission.create ~capacity:16 ~weights:[| 1; 2 |] in
  for i = 0 to 3 do
    ignore (Serve.Admission.offer q ~tenant:0 ~priority:0 (Printf.sprintf "a%d" i));
    ignore (Serve.Admission.offer q ~tenant:1 ~priority:0 (Printf.sprintf "b%d" i))
  done;
  (* Equal cost per pop; tenant 1 has twice the weight, so it gets served
     roughly twice as often while both lanes are busy. *)
  let served = ref [] in
  let rec drain () =
    match Serve.Admission.pop q ~fits:(fun _ -> true) with
    | None -> ()
    | Some (t, _) ->
        Serve.Admission.charge q ~tenant:t ~cost:100;
        served := t :: !served;
        drain ()
  in
  drain ();
  let first_six = List.filteri (fun i _ -> i < 6) (List.rev !served) in
  let t1 = List.length (List.filter (fun t -> t = 1) first_six) in
  check Alcotest.int "8 served" 8 (List.length !served);
  check Alcotest.bool "weight-2 tenant gets most of the early slots" true (t1 >= 3)

let admission_priority_within_lane () =
  let q = Serve.Admission.create ~capacity:8 ~weights:[| 1 |] in
  ignore (Serve.Admission.offer q ~tenant:0 ~priority:0 "low");
  ignore (Serve.Admission.offer q ~tenant:0 ~priority:5 "high");
  ignore (Serve.Admission.offer q ~tenant:0 ~priority:5 "high2");
  (match Serve.Admission.pop q ~fits:(fun _ -> true) with
  | Some (_, p) -> check Alcotest.string "highest priority first" "high" p
  | None -> Alcotest.fail "pop");
  match Serve.Admission.pop q ~fits:(fun _ -> true) with
  | Some (_, p) -> check Alcotest.string "FIFO within priority" "high2" p
  | None -> Alcotest.fail "pop"

let admission_backfill () =
  let q = Serve.Admission.create ~capacity:8 ~weights:[| 1; 1 |] in
  ignore (Serve.Admission.offer q ~tenant:0 ~priority:0 8);
  (* wide job *)
  ignore (Serve.Admission.offer q ~tenant:1 ~priority:0 2);
  (* narrow job *)
  match Serve.Admission.pop q ~fits:(fun w -> w <= 4) with
  | Some (t, w) ->
      check Alcotest.int "narrow job backfills" 2 w;
      check Alcotest.int "from the other lane" 1 t
  | None -> Alcotest.fail "backfill should serve the narrow job"

(* ------------------------------------------------------------------ *)
(* Server: overload edge cases (zero capacity, simultaneous arrivals,  *)
(* byte-identical reruns).                                             *)
(* ------------------------------------------------------------------ *)

let small_tenants =
  [|
    { tenant with Serve.Server.jobs = 3; scale = 0.01 };
    {
      tenant with
      Serve.Server.jobs = 3;
      scale = 0.01;
      workloads = [ "mandelbrot" ];
      arrival = Serve.Arrival.Burst { period = 50_000; size = 3 };
    };
  |]

let zero_capacity_sheds_everything () =
  let r = run (fun c -> { c with Serve.Server.tenants = small_tenants; queue_capacity = 0 }) in
  let s = r.Serve.Server.stats in
  check Alcotest.int "all submitted" 6 s.Serve.Server.submitted;
  check Alcotest.int "all shed" 6 s.Serve.Server.shed;
  check Alcotest.int "none admitted" 0 s.Serve.Server.admitted;
  List.iter
    (function
      | _, Serve.Server.Rejected "queue-full" -> ()
      | _, o -> Alcotest.failf "expected queue-full shed, got %s" (Serve.Server.outcome_name o))
    (outcomes r);
  check Alcotest.int "no violations" 0 (List.length r.Serve.Server.violations)

let simultaneous_arrivals_are_ordered () =
  (* A burst of 3 jobs at t=0 from each of two tenants: admission order
     must be total and reproducible (tenant id then per-tenant index). *)
  let burst =
    Array.map
      (fun t -> { t with Serve.Server.arrival = Serve.Arrival.Burst { period = 1_000_000; size = 3 } })
      small_tenants
  in
  let r1 = run (fun c -> { c with Serve.Server.tenants = burst }) in
  let r2 = run (fun c -> { c with Serve.Server.tenants = burst }) in
  check Alcotest.int "all admitted" 6 r1.Serve.Server.stats.Serve.Server.admitted;
  check Alcotest.bool "same outcomes" true (outcomes r1 = outcomes r2);
  check Alcotest.string "byte-identical decision journals" r1.Serve.Server.decisions
    r2.Serve.Server.decisions

let equal_seeds_byte_identical () =
  let mk () =
    run (fun c ->
        {
          c with
          Serve.Server.tenants = small_tenants;
          queue_capacity = 2;
          verify = true;
          seed = 1234;
        })
  in
  let r1 = mk () and r2 = mk () in
  check Alcotest.string "decisions" r1.Serve.Server.decisions r2.Serve.Server.decisions;
  check Alcotest.bool "reports" true (r1.Serve.Server.reports = r2.Serve.Server.reports);
  check Alcotest.bool "stats" true (r1.Serve.Server.stats = r2.Serve.Server.stats)

(* ------------------------------------------------------------------ *)
(* Deadlines: structured, isolated, conserved.                         *)
(* ------------------------------------------------------------------ *)

let deadline_cuts_only_its_job () =
  let tenants =
    [|
      { tenant with Serve.Server.jobs = 2; scale = 0.01; deadline = Some (2_000, 2_000) };
      { tenant with Serve.Server.jobs = 2; scale = 0.01; workloads = [ "mandelbrot" ] };
    |]
  in
  let r = run (fun c -> { c with Serve.Server.tenants = tenants; verify = true }) in
  List.iter
    (fun (t, o) ->
      match (t, o) with
      | 0, Serve.Server.Deadline_exceeded -> ()
      | 0, o -> Alcotest.failf "tenant 0 should deadline, got %s" (Serve.Server.outcome_name o)
      | 1, Serve.Server.Completed -> ()
      | _, o -> Alcotest.failf "tenant 1 should complete, got %s" (Serve.Server.outcome_name o))
    (outcomes r);
  check Alcotest.int "no violations" 0 (List.length r.Serve.Server.violations);
  (* partial results journaled: deadline jobs still report service + work *)
  List.iter
    (fun (j : Serve.Server.job_report) ->
      if j.Serve.Server.outcome = Serve.Server.Deadline_exceeded then begin
        check Alcotest.bool "service recorded" true (j.Serve.Server.service_cycles <> None);
        check Alcotest.bool "started" true (j.Serve.Server.start_time <> None)
      end)
    r.Serve.Server.reports

(* Satellite regression: one job's cycle budget cannot kill a co-scheduled
   job — budgets are per-job engine watchdogs, not pool-global state. *)
let budget_exhaustion_is_isolated () =
  let tenants =
    [|
      { tenant with Serve.Server.jobs = 3; scale = 0.01; cycle_budget = Some (1_500, 1_500) };
      { tenant with Serve.Server.jobs = 3; scale = 0.01; workloads = [ "mandelbrot" ] };
    |]
  in
  let r = run (fun c -> { c with Serve.Server.tenants = tenants; verify = true }) in
  List.iter
    (fun (t, o) ->
      match (t, o) with
      | 0, Serve.Server.Failed "budget" -> ()
      | 0, Serve.Server.Rejected "breaker-open" -> () (* quarantined after repeated failures *)
      | 0, o -> Alcotest.failf "tenant 0 should fail its budget, got %s" (Serve.Server.outcome_name o)
      | 1, Serve.Server.Completed -> ()
      | _, o -> Alcotest.failf "tenant 1 must be unaffected, got %s" (Serve.Server.outcome_name o))
    (outcomes r);
  check Alcotest.int "no violations" 0 (List.length r.Serve.Server.violations)

let faulty_tenant_trips_breaker () =
  let plan =
    {
      Sim.Fault_plan.none with
      Sim.Fault_plan.seed = 5;
      beat_drop_prob = 0.3;
      beat_jitter = 1_000;
      steal_fail_prob = 0.3;
      steal_fail_burst = 2;
      stall_prob = 0.1;
      stall_cycles = 500;
    }
  in
  let tenants =
    [|
      {
        tenant with
        Serve.Server.jobs = 8;
        scale = 0.01;
        arrival = Serve.Arrival.Poisson { mean_gap = 2_000.0 };
        cycle_budget = Some (1_500, 1_500);
        fault_plan = Some plan;
      };
      { tenant with Serve.Server.jobs = 3; scale = 0.01; workloads = [ "kmeans" ] };
    |]
  in
  let r =
    run (fun c ->
        {
          c with
          Serve.Server.tenants = tenants;
          breaker =
            { Serve.Breaker.default_config with Serve.Breaker.failure_threshold = 2; cooldown = 1_000_000 };
        })
  in
  let s = r.Serve.Server.stats in
  check Alcotest.bool "breaker opened" true (s.Serve.Server.breaker_opens >= 1);
  let quarantined =
    List.exists (fun (t, o) -> t = 0 && o = Serve.Server.Rejected "breaker-open") (outcomes r)
  in
  check Alcotest.bool "later jobs quarantined" true quarantined;
  List.iter
    (fun (t, o) ->
      if t = 1 && o <> Serve.Server.Completed then
        Alcotest.failf "healthy tenant hit %s" (Serve.Server.outcome_name o))
    (outcomes r);
  check Alcotest.int "no violations" 0 (List.length r.Serve.Server.violations)

(* ------------------------------------------------------------------ *)
(* Promotion budgets: metered, conserved, gracefully serial at zero.   *)
(* ------------------------------------------------------------------ *)

let promotions_never_exceed_grant () =
  let r =
    run (fun c ->
        {
          c with
          Serve.Server.tenants = small_tenants;
          meter = { Serve.Meter.refill_period = 50_000; refill_amount = 4; burst_cap = 8 };
        })
  in
  List.iter
    (fun (j : Serve.Server.job_report) ->
      check Alcotest.bool "promotions <= granted" true (j.Serve.Server.promotions <= j.Serve.Server.granted))
    r.Serve.Server.reports;
  check Alcotest.int "budget conservation holds" 0 (List.length r.Serve.Server.violations)

let zero_promotion_budget_runs_serial () =
  let entry = Workloads.Registry.find "plus-reduce-array" in
  let (Ir.Program.Any p) = entry.Workloads.Registry.make 0.01 in
  let serial = Baselines.Serial_exec.run_program p in
  let rt = { Hbc_core.Rt_config.default with Hbc_core.Rt_config.workers = 4; seed = 3 } in
  let r =
    Hbc_core.Executor.run ~request:(Hbc_core.Run_request.make ~promotion_budget:0 ()) rt p
  in
  check Alcotest.int "no promotions at zero budget" 0 r.Sim.Run_result.metrics.Sim.Metrics.promotions;
  check Alcotest.bool "still the right answer" true (Sim.Run_result.fingerprints_close serial r);
  (* and a metered run spends at most its budget *)
  let r2 =
    Hbc_core.Executor.run ~request:(Hbc_core.Run_request.make ~promotion_budget:3 ()) rt p
  in
  check Alcotest.bool "budgeted run bounded" true
    (r2.Sim.Run_result.metrics.Sim.Metrics.promotions <= 3);
  check Alcotest.bool "budgeted run correct" true (Sim.Run_result.fingerprints_close serial r2)

(* ------------------------------------------------------------------ *)
(* Job conservation.                                                   *)
(* ------------------------------------------------------------------ *)

let every_job_reaches_one_terminal_state () =
  let r =
    run (fun c ->
        {
          c with
          Serve.Server.tenants =
            Array.map
              (fun t ->
                { t with Serve.Server.deadline = Some (10_000, 400_000); jobs = 4 })
              small_tenants;
          queue_capacity = 3;
        })
  in
  let s = r.Serve.Server.stats in
  check Alcotest.int "reports cover submissions" s.Serve.Server.submitted
    (List.length r.Serve.Server.reports);
  check Alcotest.int "terminal outcomes partition submissions" s.Serve.Server.submitted
    (s.Serve.Server.shed + s.Serve.Server.completed + s.Serve.Server.deadline_exceeded
   + s.Serve.Server.failed);
  let ids = List.map (fun (j : Serve.Server.job_report) -> j.Serve.Server.job) r.Serve.Server.reports in
  check Alcotest.bool "each job exactly once" true (List.sort_uniq compare ids = List.sort compare ids);
  check Alcotest.int "checker agrees" 0 (List.length r.Serve.Server.violations)

(* ------------------------------------------------------------------ *)
(* Preempt–resume policy and WAL crash recovery.                       *)
(* ------------------------------------------------------------------ *)

(* One tenant, a quantum far below each job's makespan: under
   [Pause_and_requeue] every job must checkpoint/resume many times and
   still complete with a fingerprint matching its serial reference. *)
let pause_cfg c =
  {
    c with
    Serve.Server.tenants =
      [|
        {
          tenant with
          Serve.Server.arrival = Serve.Arrival.Burst { period = 30_000; size = 3 };
          jobs = 3;
          scale = 0.01;
          workers_wanted = 2;
          deadline = Some (8_000, 8_000);
        };
      |];
    verify = true;
    preempt = Serve.Server.Pause_and_requeue;
    max_preempts = 50;
  }

let pause_policy_completes () =
  let r = run pause_cfg in
  let s = r.Serve.Server.stats in
  check Alcotest.int "all jobs complete" 3 s.Serve.Server.completed;
  check Alcotest.bool "jobs were checkpointed" true (s.Serve.Server.checkpointed > 0);
  check Alcotest.int "every checkpoint resumed" s.Serve.Server.checkpointed s.Serve.Server.resumed;
  check Alcotest.int "no violations" 0 (List.length r.Serve.Server.violations);
  List.iter
    (fun (j : Serve.Server.job_report) ->
      check Alcotest.bool "episodes counted" true (j.Serve.Server.episodes > 0);
      check Alcotest.bool "fingerprint matches serial reference" false j.Serve.Server.mismatch;
      check Alcotest.bool "promotions within cumulative grant" true
        (j.Serve.Server.promotions <= j.Serve.Server.granted))
    r.Serve.Server.reports

let cancel_vs_pause_contrast () =
  let cancel = run (fun c -> { (pause_cfg c) with Serve.Server.preempt = Serve.Server.Cancel }) in
  let s = cancel.Serve.Server.stats in
  check Alcotest.int "cancel: the tight deadline kills everything" 0 s.Serve.Server.completed;
  check Alcotest.int "cancel: all deadline-exceeded" 3 s.Serve.Server.deadline_exceeded;
  check Alcotest.int "cancel: nothing checkpointed" 0 s.Serve.Server.checkpointed

let pause_policy_deterministic () =
  let a = run pause_cfg and b = run pause_cfg in
  check Alcotest.string "decision journals byte-identical" a.Serve.Server.decisions
    b.Serve.Server.decisions

let with_temp_wal f =
  let path = Filename.temp_file "hbc-test" ".wal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let wal_kill_and_recover () =
  let fresh = run pause_cfg in
  with_temp_wal (fun path ->
      (match
         run (fun c ->
             { (pause_cfg c) with Serve.Server.wal = Some path; wal_kill_after = Some 12 })
       with
      | _ -> Alcotest.fail "kill hook did not fire"
      | exception Serve.Server.Killed -> ());
      let recovered = run (fun c -> { (pause_cfg c) with Serve.Server.wal = Some path }) in
      check Alcotest.int "committed prefix replayed" 12 recovered.Serve.Server.wal_replayed;
      check Alcotest.string "decisions byte-identical after recovery"
        fresh.Serve.Server.decisions recovered.Serve.Server.decisions;
      check Alcotest.int "zero lost jobs" fresh.Serve.Server.stats.Serve.Server.submitted
        recovered.Serve.Server.stats.Serve.Server.submitted;
      check Alcotest.int "completions preserved" fresh.Serve.Server.stats.Serve.Server.completed
        recovered.Serve.Server.stats.Serve.Server.completed;
      (* a second recovery over the now-complete log replays everything *)
      let again = run (fun c -> { (pause_cfg c) with Serve.Server.wal = Some path }) in
      check Alcotest.string "idempotent recovery" fresh.Serve.Server.decisions
        again.Serve.Server.decisions)

let wal_foreign_log_rejected () =
  with_temp_wal (fun path ->
      ignore (run (fun c -> { (pause_cfg c) with Serve.Server.wal = Some path }));
      match run (fun c -> { (pause_cfg c) with Serve.Server.wal = Some path; seed = 43 }) with
      | _ -> Alcotest.fail "a foreign campaign's WAL was accepted"
      | exception Serve.Server.Wal _ -> ())

(* ------------------------------------------------------------------ *)
(* Serve-mode fuzz plumbing.                                           *)
(* ------------------------------------------------------------------ *)

let gen_mix_is_seeded () =
  let m1 = Sanitizer.Fuzz.gen_mix (Sim.Sim_rng.create 11) in
  let m2 = Sanitizer.Fuzz.gen_mix (Sim.Sim_rng.create 11) in
  let m3 = Sanitizer.Fuzz.gen_mix (Sim.Sim_rng.create 12) in
  check Alcotest.string "equal seeds equal mixes" (Sanitizer.Fuzz.mix_hash m1)
    (Sanitizer.Fuzz.mix_hash m2);
  check Alcotest.bool "different seeds differ" true
    (Sanitizer.Fuzz.mix_hash m1 <> Sanitizer.Fuzz.mix_hash m3);
  List.iter
    (fun (t : Sanitizer.Fuzz.mix_tenant) ->
      check Alcotest.bool "arrival codec parses" true
        (Serve.Arrival.of_string t.Sanitizer.Fuzz.mt_arrival <> None))
    m1.Sanitizer.Fuzz.mix_tenants

let tiny_mix_passes_differentially () =
  let m =
    {
      Sanitizer.Fuzz.mix_seed = 77;
      mix_pool = 4;
      mix_queue = 4;
      mix_preempt = "pause";
      mix_tenants =
        [
          {
            Sanitizer.Fuzz.mt_weight = 1;
            mt_arrival = "burst:100000:2";
            mt_jobs = 2;
            mt_workloads = [ "plus-reduce-array" ];
            mt_scale = 0.01;
            mt_workers = 2;
            mt_deadline = None;
            mt_cycle_budget = None;
            mt_plan = None;
            mt_promotion_want = 8;
          };
        ];
    }
  in
  let o = Serve.Fuzz.run_mix m in
  check Alcotest.int "no failures" 0 (List.length o.Serve.Fuzz.failures);
  check Alcotest.int "both jobs completed" 2
    o.Serve.Fuzz.result.Serve.Server.stats.Serve.Server.completed

let suite =
  [
    Alcotest.test_case "arrival codec roundtrips" `Quick arrival_roundtrip;
    Alcotest.test_case "arrival times monotone + seeded" `Quick arrival_monotone_and_seeded;
    Alcotest.test_case "breaker trips and recovers" `Quick breaker_trip_and_recover;
    Alcotest.test_case "breaker backoff grows" `Quick breaker_backoff_grows;
    Alcotest.test_case "meter refill/grant/refund" `Quick meter_refill_grant_refund;
    Alcotest.test_case "admission zero capacity" `Quick admission_zero_capacity;
    Alcotest.test_case "admission weighted fairness" `Quick admission_weighted_fairness;
    Alcotest.test_case "admission priority in lane" `Quick admission_priority_within_lane;
    Alcotest.test_case "admission backfill" `Quick admission_backfill;
    Alcotest.test_case "zero-capacity queue sheds all" `Quick zero_capacity_sheds_everything;
    Alcotest.test_case "simultaneous arrivals ordered" `Quick simultaneous_arrivals_are_ordered;
    Alcotest.test_case "equal seeds byte-identical" `Quick equal_seeds_byte_identical;
    Alcotest.test_case "deadline cuts only its job" `Quick deadline_cuts_only_its_job;
    Alcotest.test_case "budget exhaustion isolated" `Quick budget_exhaustion_is_isolated;
    Alcotest.test_case "faulty tenant quarantined" `Quick faulty_tenant_trips_breaker;
    Alcotest.test_case "promotions never exceed grant" `Quick promotions_never_exceed_grant;
    Alcotest.test_case "zero promotion budget is serial" `Quick zero_promotion_budget_runs_serial;
    Alcotest.test_case "job conservation" `Quick every_job_reaches_one_terminal_state;
    Alcotest.test_case "gen_mix is seeded" `Quick gen_mix_is_seeded;
    Alcotest.test_case "tiny mix passes" `Quick tiny_mix_passes_differentially;
    Alcotest.test_case "breaker ignores stale successes" `Quick breaker_stale_success_not_probe;
    Alcotest.test_case "breaker re-trips simultaneous probes" `Quick
      breaker_retrip_under_simultaneous_arrivals;
    Alcotest.test_case "pause policy completes" `Quick pause_policy_completes;
    Alcotest.test_case "cancel vs pause contrast" `Quick cancel_vs_pause_contrast;
    Alcotest.test_case "pause policy deterministic" `Quick pause_policy_deterministic;
    Alcotest.test_case "wal kill and recover" `Quick wal_kill_and_recover;
    Alcotest.test_case "wal foreign log rejected" `Quick wal_foreign_log_rejected;
  ]
