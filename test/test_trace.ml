(* The trace subsystem's contract: sinks never perturb results, the counting
   sink and captured events agree (single emission site per occurrence), the
   export is deterministic byte for byte, ring sinks bound memory by
   dropping oldest, and the query layer is capture-order independent. *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let workers = 8

let program () = Workloads.Spmv.powerlaw ~scale:0.05

let rt = { Hbc_core.Rt_config.default with workers }

let run ?request () = Hbc_core.Executor.run ?request rt (program ())

let run_traced () =
  run ~request:(Hbc_core.Run_request.make ~trace:(Obs.Trace.Sink.stream ()) ()) ()

(* ------------------- tracing never changes results ------------------- *)

(* The Null sink (tracing off) and a full Stream capture must be the same
   run: same fingerprint, same makespan, same counters. Emission allocates
   nothing through Null and never advances virtual time through Stream. *)
let tracing_off_is_identical () =
  let off = run () in
  let on_ = run_traced () in
  check_int "makespan" off.Sim.Run_result.makespan on_.Sim.Run_result.makespan;
  Alcotest.(check (float 0.0))
    "fingerprint" off.Sim.Run_result.fingerprint on_.Sim.Run_result.fingerprint;
  Alcotest.(check (list (pair string int)))
    "all counters"
    (Sim.Metrics.counters off.Sim.Run_result.metrics)
    (Sim.Metrics.counters on_.Sim.Run_result.metrics);
  check_int "null sink captures nothing" 0 (List.length off.Sim.Run_result.trace);
  check_bool "stream sink captured" true (List.length on_.Sim.Run_result.trace > 0)

(* ------------------- export determinism ------------------- *)

let export_is_byte_identical () =
  let a = run_traced () and b = run_traced () in
  let export r = Obs.Perfetto.to_string ~process_name:"test" r.Sim.Run_result.trace in
  check_string "same JSON bytes" (export a) (export b);
  check_bool "non-trivial" true (String.length (export a) > 100)

let export_parses_as_chrome_trace () =
  let r = run_traced () in
  let j = Obs.Json.parse (Obs.Perfetto.to_string r.Sim.Run_result.trace) in
  match j with
  | Obs.Json.Obj fields -> (
      match Obs.Json.mem "traceEvents" fields with
      | Some (Obs.Json.Arr events) ->
          check_bool "has events" true (List.length events > 0);
          (* every event has the mandatory Chrome trace_event keys *)
          List.iter
            (function
              | Obs.Json.Obj ef ->
                  check_bool "name" true (Obs.Json.get_str "name" ef <> None);
                  check_bool "ph" true (Obs.Json.get_str "ph" ef <> None);
                  check_bool "pid" true (Obs.Json.get_int "pid" ef <> None)
              | _ -> Alcotest.fail "event is not an object")
            events
      | _ -> Alcotest.fail "no traceEvents array")
  | _ -> Alcotest.fail "top level is not an object"

let journal_codec_roundtrip () =
  let r = run_traced () in
  let recs = r.Sim.Run_result.trace in
  let decoded = Obs.Trace.records_of_json (Obs.Trace.records_to_json recs) in
  check_bool "round-trips exactly" true (decoded = recs)

(* ------------------- counting sink parity ------------------- *)

(* Counters and captured events come from the same emissions, so they can
   never disagree. *)
let counters_match_trace () =
  let r = run_traced () in
  let m = r.Sim.Run_result.metrics and t = r.Sim.Run_result.trace in
  let count p = Obs.Trace_query.count p t in
  check_int "promotions"
    m.Sim.Metrics.promotions
    (count (function Obs.Trace.Promotion _ -> true | _ -> false));
  check_int "steal attempts"
    m.Sim.Metrics.steal_attempts
    (count (function Obs.Trace.Steal_attempt -> true | _ -> false));
  check_int "steals"
    m.Sim.Metrics.steals
    (count (function Obs.Trace.Steal_success -> true | _ -> false));
  check_int "tasks spawned"
    m.Sim.Metrics.tasks_spawned
    (count (function Obs.Trace.Task_spawned -> true | _ -> false));
  check_int "beats generated"
    m.Sim.Metrics.heartbeats_generated
    (count (function Obs.Trace.Heartbeat_generated -> true | _ -> false));
  check_int "beats detected"
    m.Sim.Metrics.heartbeats_detected
    (count (function Obs.Trace.Heartbeat_detected -> true | _ -> false));
  check_int "polls" m.Sim.Metrics.polls (count (function Obs.Trace.Poll -> true | _ -> false));
  check_int "chunk updates"
    m.Sim.Metrics.chunk_updates
    (count (function Obs.Trace.Chunk_update _ -> true | _ -> false));
  (* per-level histogram agrees with the bucketed query *)
  Alcotest.(check (array int))
    "promotions by level" m.Sim.Metrics.promotions_by_level
    (Obs.Trace_query.promotions_by_level t)

(* ------------------- sink semantics ------------------- *)

let some_records n =
  List.init n (fun i ->
      { Obs.Trace.seq = i; time = 10 * i; worker = i mod 2; event = Obs.Trace.Poll })

let ring_drops_oldest () =
  let ring = Obs.Trace.Sink.ring ~workers:2 ~capacity:3 () in
  List.iter
    (fun r -> Obs.Trace.Sink.emit ring ~time:r.Obs.Trace.time ~worker:r.Obs.Trace.worker Obs.Trace.Poll)
    (some_records 10);
  (* 10 events over 2 workers, 3 slots each: 6 kept, 4 dropped *)
  check_int "dropped count" 4 (Obs.Trace.Sink.dropped ring);
  let kept = Obs.Trace.Sink.captured ring in
  check_int "kept" 6 (List.length kept);
  (* the oldest went first: every kept time is newer than every dropped one *)
  List.iter (fun r -> check_bool "newest kept" true (r.Obs.Trace.time >= 40)) kept;
  (* per-worker merge preserves global emission order *)
  check_bool "seq sorted" true
    (List.for_all2
       (fun a b -> a.Obs.Trace.seq < b.Obs.Trace.seq)
       (List.filteri (fun i _ -> i < 5) kept)
       (List.tl kept))

let ring_keep_filter () =
  let ring =
    Obs.Trace.Sink.ring
      ~keep:(function Obs.Trace.Steal_success -> true | _ -> false)
      ~workers:1 ~capacity:8 ()
  in
  Obs.Trace.Sink.emit ring ~time:1 ~worker:0 Obs.Trace.Poll;
  Obs.Trace.Sink.emit ring ~time:2 ~worker:0 Obs.Trace.Steal_success;
  Obs.Trace.Sink.emit ring ~time:3 ~worker:0 Obs.Trace.Poll;
  check_int "only kept events" 1 (List.length (Obs.Trace.Sink.captured ring));
  check_int "filtered are not drops" 0 (Obs.Trace.Sink.dropped ring)

let tee_and_null () =
  check_bool "null disabled" false (Obs.Trace.Sink.enabled Obs.Trace.Sink.null);
  check_bool "null captures nothing" false (Obs.Trace.Sink.captures Obs.Trace.Sink.null);
  let s = Obs.Trace.Sink.stream () in
  check_bool "tee collapses null" true (Obs.Trace.Sink.tee Obs.Trace.Sink.null s == s);
  let hits = ref 0 in
  let f = Obs.Trace.Sink.fn (fun ~time:_ ~worker:_ _ -> incr hits) in
  let t = Obs.Trace.Sink.tee f s in
  Obs.Trace.Sink.emit t ~time:5 ~worker:1 Obs.Trace.Task_spawned;
  check_int "fn side saw it" 1 !hits;
  check_int "stream side saw it" 1 (List.length (Obs.Trace.Sink.captured s));
  check_bool "fn captures nothing" false (Obs.Trace.Sink.captures f);
  check_bool "tee with stream captures" true (Obs.Trace.Sink.captures t)

(* ------------------- query layer ------------------- *)

let windowed_query () =
  let recs = some_records 10 in
  (* events at t = 0,10,...,90; windows of 25 cycles: 0..24 has 3, 25..49
     has 2 (t=30,40), 50..74 has 3 (t=50,60,70), 75..99 has 2 *)
  Alcotest.(check (list (pair int int)))
    "window histogram"
    [ (0, 3); (25, 2); (50, 3); (75, 2) ]
    (Obs.Trace_query.windowed ~width:25 (fun _ -> true) recs)

let query_order_independent () =
  let r = run_traced () in
  let t = r.Sim.Run_result.trace in
  let shuffled = List.rev t in
  check_bool "intervals" true
    (Obs.Trace_query.intervals t = Obs.Trace_query.intervals shuffled);
  check_bool "chunk updates" true
    (Obs.Trace_query.chunk_updates t = Obs.Trace_query.chunk_updates shuffled);
  check_int "count" (Obs.Trace_query.count (fun _ -> true) t)
    (Obs.Trace_query.count (fun _ -> true) shuffled)

(* ------------------- job lifecycle events ------------------- *)

(* The serve-mode job lifecycle in submission order: every variant the
   server can emit for one job, including the preempt–resume pair. *)
let job_lifecycle_events =
  [
    Obs.Trace.Job_submitted { job = 3; tenant = 1 };
    Obs.Trace.Job_admitted { job = 3; tenant = 1; queued = 2 };
    Obs.Trace.Job_shed { job = 4; tenant = 0; reason = "queue-full" };
    Obs.Trace.Job_started { job = 3; tenant = 1; budget = 16 };
    Obs.Trace.Job_checkpointed { job = 3; tenant = 1; at_cycle = 8_000 };
    Obs.Trace.Job_resumed { job = 3; tenant = 1; episode = 1; budget = 12 };
    Obs.Trace.Job_preempted { job = 3; tenant = 1 };
    Obs.Trace.Job_finished { job = 3; tenant = 1; state = "completed"; promotions = 9 };
  ]

let job_lifecycle_codec_roundtrip () =
  check_int "all eight lifecycle variants" 8 (List.length job_lifecycle_events);
  let recs =
    List.mapi
      (fun i e -> { Obs.Trace.seq = i; time = 100 * i; worker = -1; event = e })
      job_lifecycle_events
  in
  let decoded = Obs.Trace.records_of_json (Obs.Trace.records_to_json recs) in
  check_bool "round-trips exactly" true (decoded = recs)

let job_lifecycle_keep_filter () =
  let is_ck_resume = function
    | Obs.Trace.Job_checkpointed _ | Obs.Trace.Job_resumed _ -> true
    | _ -> false
  in
  let ring = Obs.Trace.Sink.ring ~keep:is_ck_resume ~workers:1 ~capacity:16 () in
  List.iteri (fun i e -> Obs.Trace.Sink.emit ring ~time:i ~worker:0 e) job_lifecycle_events;
  check_int "kept only checkpoint/resume" 2 (List.length (Obs.Trace.Sink.captured ring));
  check_int "filtered are not drops" 0 (Obs.Trace.Sink.dropped ring);
  let keep_all = Obs.Trace.Sink.ring ~keep:(fun _ -> true) ~workers:1 ~capacity:16 () in
  List.iteri (fun i e -> Obs.Trace.Sink.emit keep_all ~time:i ~worker:0 e) job_lifecycle_events;
  check_int "lifecycle passes an open filter" 8
    (List.length (Obs.Trace.Sink.captured keep_all))

let suite =
  [
    Alcotest.test_case "tracing off is identical" `Quick tracing_off_is_identical;
    Alcotest.test_case "export byte-identical across runs" `Quick export_is_byte_identical;
    Alcotest.test_case "export parses as chrome trace" `Quick export_parses_as_chrome_trace;
    Alcotest.test_case "journal codec round-trips" `Quick journal_codec_roundtrip;
    Alcotest.test_case "counters match trace" `Quick counters_match_trace;
    Alcotest.test_case "ring drops oldest" `Quick ring_drops_oldest;
    Alcotest.test_case "ring keep filter" `Quick ring_keep_filter;
    Alcotest.test_case "tee and null" `Quick tee_and_null;
    Alcotest.test_case "windowed query" `Quick windowed_query;
    Alcotest.test_case "query order independent" `Quick query_order_independent;
    Alcotest.test_case "job lifecycle codec round-trips" `Quick job_lifecycle_codec_roundtrip;
    Alcotest.test_case "job lifecycle keep filter" `Quick job_lifecycle_keep_filter;
  ]
