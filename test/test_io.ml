(* Tests for the MatrixMarket / edge-list readers, plus the gantt renderer
   and the ablation plumbing. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let temp_file suffix = Filename.temp_file "hbc_test" suffix

let csr_equal (a : Workloads.Matrix_gen.csr) (b : Workloads.Matrix_gen.csr) =
  a.Workloads.Matrix_gen.n = b.Workloads.Matrix_gen.n
  && a.Workloads.Matrix_gen.row_ptr = b.Workloads.Matrix_gen.row_ptr
  && (* within a row the reader may reorder; compare sorted pairs *)
  List.for_all
    (fun i ->
      let row (m : Workloads.Matrix_gen.csr) =
        List.init
          (m.Workloads.Matrix_gen.row_ptr.(i + 1) - m.Workloads.Matrix_gen.row_ptr.(i))
          (fun k ->
            let k = k + m.Workloads.Matrix_gen.row_ptr.(i) in
            (m.Workloads.Matrix_gen.col_ind.(k), m.Workloads.Matrix_gen.vals.(k)))
        |> List.sort Stdlib.compare
      in
      row a = row b)
    (List.init a.Workloads.Matrix_gen.n Fun.id)

let mtx_roundtrip () =
  let m = Workloads.Matrix_gen.powerlaw ~reverse:false ~n:300 ~avg_nnz:6 ~seed:9 in
  let path = temp_file ".mtx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workloads.Io_formats.write_matrix_market path m;
      let m2 = Workloads.Io_formats.read_matrix_market path in
      check_bool "round trip" true (csr_equal m m2))

let mtx_symmetric_mirrored () =
  let path = temp_file ".mtx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 2 5.0\n3 3 7.0\n";
      close_out oc;
      let m = Workloads.Io_formats.read_matrix_market path in
      check_int "mirrored nnz" 3 (Workloads.Matrix_gen.nnz m);
      check_int "row 0 has (0,1)" 1 (Workloads.Matrix_gen.nnz_of_row m 0);
      check_int "row 1 has mirror (1,0)" 1 (Workloads.Matrix_gen.nnz_of_row m 1))

let mtx_pattern_field () =
  let path = temp_file ".mtx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "%%MatrixMarket matrix coordinate pattern general\n% c\n2 2 2\n1 1\n2 2\n";
      close_out oc;
      let m = Workloads.Io_formats.read_matrix_market path in
      check_int "nnz" 2 (Workloads.Matrix_gen.nnz m);
      Alcotest.(check (float 0.0)) "pattern value" 1.0 m.Workloads.Matrix_gen.vals.(0))

let mtx_rejects_garbage () =
  let path = temp_file ".mtx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a matrix\n";
      close_out oc;
      check_bool "raises" true
        (try
           ignore (Workloads.Io_formats.read_matrix_market path);
           false
         with Workloads.Io_formats.Parse_error _ -> true))

let mtx_drives_spmv () =
  let m = Workloads.Matrix_gen.arrowhead ~n:400 in
  let path = temp_file ".mtx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workloads.Io_formats.write_matrix_market path m;
      let program =
        Workloads.Spmv.make_program ~name:"from-mtx" ~make_matrix:(fun () ->
            Workloads.Io_formats.read_matrix_market path)
      in
      let seq = Baselines.Serial_exec.run_program program in
      let hbc = Hbc_core.Executor.run { Hbc_core.Rt_config.default with workers = 8 } program in
      check_bool "valid run from file input" true (Sim.Run_result.fingerprints_close seq hbc))

let edge_list_roundtrip () =
  let g = Workloads.Graph.powerlaw ~n:200 ~avg_deg:5 ~alpha:1.5 ~seed:21 in
  let path = temp_file ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workloads.Io_formats.write_edge_list path g;
      let g2 = Workloads.Io_formats.read_edge_list path in
      check_int "n" g.Workloads.Graph.n g2.Workloads.Graph.n;
      check_int "edges" (Workloads.Graph.edges g) (Workloads.Graph.edges g2);
      check_bool "in_ptr equal" true (g.Workloads.Graph.in_ptr = g2.Workloads.Graph.in_ptr))

let edge_list_comments_and_weights () =
  let path = temp_file ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# snap-style header\n0 1\n1 2 3.5\n\n2 0\n";
      close_out oc;
      let g = Workloads.Io_formats.read_edge_list ~default_weight:2.0 path in
      check_int "n from max id" 3 g.Workloads.Graph.n;
      check_int "edges" 3 (Workloads.Graph.edges g);
      check_int "in-degree of 2" 1 (Workloads.Graph.in_degree g 2);
      (* vertex 2's single in-edge is 1 -> 2 with weight 3.5 *)
      Alcotest.(check (float 0.0)) "weight kept" 3.5
        g.Workloads.Graph.weights.(g.Workloads.Graph.in_ptr.(2)))

(* ----------------------------- gantt ------------------------------ *)

(* Interval events are stamped at their end time and carry their start. *)
let interval_record seq worker t0 t1 kind =
  { Obs.Trace.seq; time = t1; worker; event = Obs.Trace.Interval { t0; kind } }

let interval_sink () =
  Obs.Trace.Sink.stream ~keep:(function Obs.Trace.Interval _ -> true | _ -> false) ()

let gantt_renders () =
  let records = [ interval_record 0 0 0 100 "task"; interval_record 1 1 50 100 "task" ] in
  let s = Report.Gantt.render ~width:10 ~workers:2 ~makespan:100 records in
  check_bool "worker rows present" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 3 && String.sub l 0 3 = "w00"));
  Alcotest.(check (float 0.01)) "utilization" 75.0
    (Report.Gantt.utilization ~workers:2 ~makespan:100 records)

let gantt_order_independent () =
  (* The renderer sorts chronologically: feeding the intervals reversed (as
     a newest-first capture would) must yield the identical chart. *)
  let records = [ interval_record 0 0 0 100 "task"; interval_record 1 1 50 100 "task" ] in
  let chart l = Report.Gantt.render ~width:10 ~workers:2 ~makespan:100 l in
  Alcotest.(check string) "same chart" (chart records) (chart (List.rev records))

let timeline_recorded () =
  let p = Workloads.Spmv.random ~scale:0.05 in
  let request = Hbc_core.Run_request.make ~trace:(interval_sink ()) () in
  let r = Hbc_core.Executor.run ~request { Hbc_core.Rt_config.default with workers = 8 } p in
  let tl = Obs.Trace_query.intervals r.Sim.Run_result.trace in
  check_bool "intervals recorded" true (List.length tl > 1);
  List.iter
    (fun (w, t0, t1, _) ->
      check_bool "worker in range" true (w >= 0 && w < 8);
      check_bool "interval ordered" true (t1 > t0 && t1 <= r.Sim.Run_result.makespan))
    tl;
  (* worker 0 includes the driver interval spanning the run *)
  check_bool "driver recorded" true
    (List.exists (fun (_, _, _, k) -> k = "driver") tl)

let timeline_off_by_default () =
  let p = Workloads.Spmv.random ~scale:0.05 in
  let r = Hbc_core.Executor.run { Hbc_core.Rt_config.default with workers = 8 } p in
  check_int "no intervals" 0 (List.length r.Sim.Run_result.trace)

(* --------------------------- ablations ---------------------------- *)

let tiny = { Experiments.Harness.default_config with scale = 0.05; workers = 8 }

let ablation_registry () =
  Alcotest.(check (list string))
    "studies"
    [
      "leftover-task";
      "promotion-policy";
      "chunk-transferring";
      "leftover-pairs";
      "heartbeat-rate";
      "ac-window";
      "worker-scaling";
      "hybrid";
      "omp-schedules";
    ]
    (List.map fst Experiments.Ablations.all)

let ablation_policy_renders () =
  Experiments.Harness.clear_cache ();
  let out = Experiments.Ablations.promotion_policy tiny in
  check_bool "has outer-loop-first column" true
    (String.length out > 0
    && String.split_on_char '\n' out |> List.exists (fun l -> String.length l > 0));
  check_bool "no validation failures" true (Experiments.Harness.validation_failures () = [])

let innermost_policy_correct_but_finer () =
  let p = Workloads.Spmv.powerlaw ~scale:0.1 in
  let seq = Baselines.Serial_exec.run_program p in
  let outer = Hbc_core.Executor.run { Hbc_core.Rt_config.default with workers = 8 } p in
  let inner =
    Hbc_core.Executor.run
      { Hbc_core.Rt_config.default with workers = 8; policy = Hbc_core.Rt_config.Innermost_first }
      p
  in
  check_bool "innermost-first still correct" true (Sim.Run_result.fingerprints_close seq inner);
  check_bool "outer-loop-first at least as fast" true
    (outer.Sim.Run_result.makespan <= inner.Sim.Run_result.makespan + (inner.Sim.Run_result.makespan / 5))

let gantt_empty_makespan () =
  let s = Report.Gantt.render ~workers:2 ~makespan:0 [] in
  check_bool "graceful" true (String.length s > 0);
  Alcotest.(check (float 0.0)) "zero utilization" 0.0
    (Report.Gantt.utilization ~workers:2 ~makespan:0 [])

let suite =
  [
    Alcotest.test_case "mtx: round trip" `Quick mtx_roundtrip;
    Alcotest.test_case "mtx: symmetric mirrored" `Quick mtx_symmetric_mirrored;
    Alcotest.test_case "mtx: pattern field" `Quick mtx_pattern_field;
    Alcotest.test_case "mtx: rejects garbage" `Quick mtx_rejects_garbage;
    Alcotest.test_case "mtx: drives spmv end-to-end" `Quick mtx_drives_spmv;
    Alcotest.test_case "edges: round trip" `Quick edge_list_roundtrip;
    Alcotest.test_case "edges: comments and weights" `Quick edge_list_comments_and_weights;
    Alcotest.test_case "gantt: renders" `Quick gantt_renders;
    Alcotest.test_case "gantt: order independent" `Quick gantt_order_independent;
    Alcotest.test_case "timeline: recorded when asked" `Quick timeline_recorded;
    Alcotest.test_case "timeline: off by default" `Quick timeline_off_by_default;
    Alcotest.test_case "ablations: registry" `Quick ablation_registry;
    Alcotest.test_case "ablations: policy study" `Slow ablation_policy_renders;
    Alcotest.test_case "policy: innermost correct, outer faster" `Slow innermost_policy_correct_but_finer;
    Alcotest.test_case "gantt: empty makespan" `Quick gantt_empty_makespan;
  ]
