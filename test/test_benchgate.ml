(* Perf-gate subsystem: report codec, regression diff, suite determinism. *)

open Benchgate

let metric ?(kind = Report.Deterministic) name value = { Report.metric = name; value; kind }

let probe name metrics = { Report.probe = name; metrics }

let sample_report ?(label = "t") probes = Report.make ~notes:[ ("k", "v") ] ~label probes

let base () =
  sample_report
    [
      probe "micro/a" [ metric "cycles" 100.; metric ~kind:Report.Advisory "wall_ns" 5000. ];
      probe "macro/b" [ metric "promotions" 40.; metric "steals" 8. ];
    ]

(* ------------------------------- codec ---------------------------- *)

let test_roundtrip () =
  let r = base () in
  let r' = Report.of_string (Report.to_string r) in
  Alcotest.(check int) "schema" Report.schema_version r'.Report.schema;
  Alcotest.(check string) "label" r.Report.label r'.Report.label;
  Alcotest.(check (list (pair string string))) "notes" r.Report.notes r'.Report.notes;
  Alcotest.(check int) "probes" (List.length r.Report.probes) (List.length r'.Report.probes);
  let p = Option.get (Report.find_probe r' "micro/a") in
  let m = Option.get (Report.find_metric p "cycles") in
  Alcotest.(check (float 0.0)) "value" 100. m.Report.value;
  Alcotest.(check bool) "kind" true (m.Report.kind = Report.Deterministic);
  let adv = Option.get (Report.find_metric p "wall_ns") in
  Alcotest.(check bool) "adv kind" true (adv.Report.kind = Report.Advisory)

let test_roundtrip_bytes () =
  (* Deterministic serialization: decode/encode is the identity on bytes. *)
  let s = Report.to_string (base ()) in
  Alcotest.(check string) "byte-stable" s (Report.to_string (Report.of_string s))

let test_malformed () =
  Alcotest.check_raises "wrong schema"
    (Report.Malformed "unsupported report schema 999 (this build reads 1)") (fun () ->
      ignore (Report.of_string {|{"schema": 999, "label": "x", "notes": {}, "probes": []}|}));
  (match Report.of_string {|{"schema": 1, "label": "x", "notes": {}, "probes": [{"probe": "p", "metrics": [{"metric": "m", "value": 1, "kind": "bogus"}]}]}|} with
  | exception Report.Malformed _ -> ()
  | _ -> Alcotest.fail "bad kind tag accepted");
  match Report.of_string "{nope" with
  | exception Obs.Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "syntax error accepted"

let test_file_roundtrip () =
  let path = Filename.temp_file "benchgate" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let r = base () in
      Report.write_file path r;
      let r' = Report.read_file path in
      Alcotest.(check string) "label" r.Report.label r'.Report.label;
      Alcotest.(check int) "probes" 2 (List.length r'.Report.probes))

(* -------------------------------- diff ---------------------------- *)

let diff ?threshold ?adv_threshold old new_ = Diff.compare ?threshold ?adv_threshold ~old ~new_ ()

let statuses lines = List.map (fun l -> l.Diff.status) lines

let test_diff_identical () =
  let lines, verdict = diff (base ()) (base ()) in
  Alcotest.(check bool) "pass" true (verdict = Diff.Pass);
  Alcotest.(check bool) "all unchanged" true
    (List.for_all (fun s -> s = Diff.Unchanged) (statuses lines));
  Alcotest.(check int) "exit 0" 0 (Diff.exit_code verdict)

let test_diff_regression () =
  let old = sample_report [ probe "p" [ metric "cycles" 100. ] ] in
  let new_ = sample_report [ probe "p" [ metric "cycles" 103. ] ] in
  let lines, verdict = diff old new_ in
  Alcotest.(check bool) "fail" true (verdict = Diff.Fail);
  Alcotest.(check int) "exit 1" 1 (Diff.exit_code verdict);
  match lines with
  | [ l ] ->
      Alcotest.(check bool) "regressed" true (l.Diff.status = Diff.Regressed);
      Alcotest.(check (float 0.01)) "delta" 3.0 (Option.get l.Diff.delta_pct)
  | _ -> Alcotest.fail "expected one line"

let test_diff_within_threshold () =
  let old = sample_report [ probe "p" [ metric "cycles" 100. ] ] in
  let new_ = sample_report [ probe "p" [ metric "cycles" 101. ] ] in
  let _, verdict = diff old new_ in
  Alcotest.(check bool) "1% passes a 2% gate" true (verdict = Diff.Pass);
  let _, tight = diff ~threshold:0.005 old new_ in
  Alcotest.(check bool) "1% fails a 0.5% gate" true (tight = Diff.Fail)

let test_diff_improvement_passes () =
  let old = sample_report [ probe "p" [ metric "cycles" 100. ] ] in
  let new_ = sample_report [ probe "p" [ metric "cycles" 80. ] ] in
  let lines, verdict = diff old new_ in
  Alcotest.(check bool) "pass" true (verdict = Diff.Pass);
  Alcotest.(check bool) "improved" true (statuses lines = [ Diff.Improved ])

let test_diff_zero_baseline () =
  (* A metric that was 0 and became nonzero has no finite relative delta:
     treated as a regression (a new cost appeared). *)
  let old = sample_report [ probe "p" [ metric "steals" 0. ] ] in
  let new_ = sample_report [ probe "p" [ metric "steals" 5. ] ] in
  let _, verdict = diff old new_ in
  Alcotest.(check bool) "0 -> 5 fails" true (verdict = Diff.Fail)

let test_diff_advisory_warns_only () =
  let old = sample_report [ probe "p" [ metric ~kind:Report.Advisory "wall_ns" 1000. ] ] in
  let new_ = sample_report [ probe "p" [ metric ~kind:Report.Advisory "wall_ns" 4000. ] ] in
  let lines, verdict = diff old new_ in
  Alcotest.(check bool) "warn, never fail" true (verdict = Diff.Warn);
  Alcotest.(check bool) "changed" true (statuses lines = [ Diff.Changed ]);
  Alcotest.(check int) "exit 0" 0 (Diff.exit_code verdict);
  (* Below the advisory threshold it does not even warn. *)
  let small = sample_report [ probe "p" [ metric ~kind:Report.Advisory "wall_ns" 1100. ] ] in
  let _, v2 = diff old small in
  Alcotest.(check bool) "10% wall jitter ignored" true (v2 = Diff.Pass)

let test_diff_skew () =
  (* Probe/metric set skew between baseline and suite warns, never fails. *)
  let old =
    sample_report [ probe "gone" [ metric "cycles" 1. ]; probe "p" [ metric "old_m" 1. ] ]
  in
  let new_ =
    sample_report [ probe "p" [ metric "new_m" 2. ]; probe "fresh" [ metric "cycles" 3. ] ]
  in
  let lines, verdict = diff old new_ in
  Alcotest.(check bool) "warn" true (verdict = Diff.Warn);
  let count st = List.length (List.filter (fun s -> s = st) (statuses lines)) in
  Alcotest.(check int) "removed probe + removed metric" 2 (count Diff.Removed);
  Alcotest.(check int) "added probe + added metric" 2 (count Diff.Added);
  Alcotest.(check int) "exit 0" 0 (Diff.exit_code verdict)

let test_render_mentions_regression () =
  let old = sample_report [ probe "p" [ metric "cycles" 100. ] ] in
  let new_ = sample_report [ probe "p" [ metric "cycles" 200. ] ] in
  let lines, verdict = diff old new_ in
  let s = Diff.render ~old ~new_ lines verdict in
  let has needle =
    let nl = String.length needle and sl = String.length s in
    let rec at i = i + nl <= sl && (String.sub s i nl = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "names probe" true (has "p");
  Alcotest.(check bool) "says FAIL" true (has "FAIL")

(* ----------------------------- suite ------------------------------ *)

(* The acceptance property of the whole subsystem: running the suite twice
   in one process yields identical deterministic metrics (virtual cycles,
   event counts, gated allocation words). *)
let test_suite_deterministic () =
  let strip probes =
    List.map
      (fun (p : Report.probe) ->
        ( p.Report.probe,
          List.filter_map
            (fun (m : Report.metric) ->
              if m.Report.kind = Report.Deterministic then Some (m.Report.metric, m.Report.value)
              else None)
            p.Report.metrics ))
      probes
  in
  let a = strip (Suite.all ()) in
  let b = strip (Suite.all ()) in
  Alcotest.(check (list (pair string (list (pair string (float 0.0)))))) "identical" a b;
  let r1, _ = Diff.compare ~old:(Report.make ~label:"a" (Suite.all ()))
      ~new_:(Report.make ~label:"b" (Suite.all ())) () in
  Alcotest.(check bool) "no deterministic drift" true
    (List.for_all
       (fun l ->
         match l.Diff.kind with
         | Some Report.Deterministic -> l.Diff.status = Diff.Unchanged
         | _ -> true)
       r1)

let test_suite_shape () =
  let r = Suite.report ~label:"shape" () in
  Alcotest.(check bool) "has micro probes" true
    (Option.is_some (Report.find_probe r "micro/engine-dispatch"));
  Alcotest.(check bool) "has macro probes" true
    (Option.is_some (Report.find_probe r "macro/fig4-5/spmv-powerlaw-hbc"));
  let p = Option.get (Report.find_probe r "macro/fig4-5/spmv-powerlaw-hbc") in
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " present") true (Option.is_some (Report.find_metric p m)))
    [ "makespan_cycles"; "promotions"; "steals"; "polls"; "alloc_minor_words"; "wall_ns" ];
  Alcotest.(check bool) "provenance recorded" true (List.mem_assoc "suite_seed" r.Report.notes)

let suite =
  [
    Alcotest.test_case "codec: report round-trip" `Quick test_roundtrip;
    Alcotest.test_case "codec: byte-stable serialization" `Quick test_roundtrip_bytes;
    Alcotest.test_case "codec: malformed inputs rejected" `Quick test_malformed;
    Alcotest.test_case "codec: file round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "diff: identical reports pass" `Quick test_diff_identical;
    Alcotest.test_case "diff: >2% deterministic growth fails" `Quick test_diff_regression;
    Alcotest.test_case "diff: threshold boundary" `Quick test_diff_within_threshold;
    Alcotest.test_case "diff: improvement passes" `Quick test_diff_improvement_passes;
    Alcotest.test_case "diff: zero-baseline growth fails" `Quick test_diff_zero_baseline;
    Alcotest.test_case "diff: advisory warns only" `Quick test_diff_advisory_warns_only;
    Alcotest.test_case "diff: metric-set skew warns only" `Quick test_diff_skew;
    Alcotest.test_case "diff: render names regressions" `Quick test_render_mentions_regression;
    Alcotest.test_case "suite: deterministic metrics stable" `Slow test_suite_deterministic;
    Alcotest.test_case "suite: probes and metrics present" `Slow test_suite_shape;
  ]
