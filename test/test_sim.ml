(* Tests for the simulation substrate: RNG, deque, engine, membus, metrics. *)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ------------------------------ rng ------------------------------- *)

let rng_deterministic () =
  let a = Sim.Sim_rng.create 7 and b = Sim.Sim_rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Sim_rng.next_int64 a) (Sim.Sim_rng.next_int64 b)
  done

let rng_int_bounds () =
  let r = Sim.Sim_rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Sim.Sim_rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let rng_float_bounds () =
  let r = Sim.Sim_rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Sim.Sim_rng.float r 2.5 in
    check_bool "in range" true (v >= 0.0 && v < 2.5)
  done

let rng_int_mean () =
  let r = Sim.Sim_rng.create 5 in
  let n = 50_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Sim.Sim_rng.int r 100
  done;
  let mean = Float.of_int !sum /. Float.of_int n in
  check_bool "mean near 49.5" true (Float.abs (mean -. 49.5) < 1.5)

let rng_split_independent () =
  let r = Sim.Sim_rng.create 9 in
  let c1 = Sim.Sim_rng.split r in
  let c2 = Sim.Sim_rng.split r in
  check_bool "children differ" true (Sim.Sim_rng.next_int64 c1 <> Sim.Sim_rng.next_int64 c2)

let rng_zipf_bounds =
  QCheck.Test.make ~name:"zipf stays in [1, n]" ~count:500
    QCheck.(pair (int_range 1 1000) (int_range 0 10_000))
    (fun (n, seed) ->
      let r = Sim.Sim_rng.create seed in
      let v = Sim.Sim_rng.zipf r ~alpha:1.3 ~n in
      v >= 1 && v <= n)

let rng_zipf_skew () =
  (* A Zipf sample is heavily concentrated on small values. *)
  let r = Sim.Sim_rng.create 11 in
  let small = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Sim.Sim_rng.zipf r ~alpha:1.5 ~n:1000 <= 3 then incr small
  done;
  check_bool "most samples tiny" true (!small > n / 2)

(* ----------------------------- deque ------------------------------ *)

let deque_lifo_owner () =
  let d = Sim.Deque.create () in
  Sim.Deque.push_bottom d 1;
  Sim.Deque.push_bottom d 2;
  Sim.Deque.push_bottom d 3;
  Alcotest.(check (option int)) "newest first" (Some 3) (Sim.Deque.pop_bottom d);
  Alcotest.(check (option int)) "then 2" (Some 2) (Sim.Deque.pop_bottom d);
  check_int "length" 1 (Sim.Deque.length d)

let deque_fifo_thief () =
  let d = Sim.Deque.create () in
  List.iter (Sim.Deque.push_bottom d) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "oldest first" (Some 1) (Sim.Deque.steal d);
  Alcotest.(check (option int)) "owner still newest" (Some 3) (Sim.Deque.pop_bottom d)

let deque_growth () =
  let d = Sim.Deque.create () in
  for i = 0 to 999 do
    Sim.Deque.push_bottom d i
  done;
  check_int "all kept" 1000 (Sim.Deque.length d);
  Alcotest.(check (list int)) "order top..bottom" (List.init 1000 Fun.id) (Sim.Deque.to_list d)

(* Model-based qcheck: a deque behaves like a functional double-ended list. *)
let deque_model =
  QCheck.Test.make ~name:"deque matches list model" ~count:300
    QCheck.(list (int_range 0 2))
    (fun ops ->
      let d = Sim.Deque.create () in
      let model = ref [] in
      (* model: list with head = top (oldest), tail end = bottom (newest) *)
      let counter = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
              incr counter;
              Sim.Deque.push_bottom d !counter;
              model := !model @ [ !counter ];
              true
          | 1 -> (
              let got = Sim.Deque.pop_bottom d in
              match List.rev !model with
              | [] -> got = None
              | x :: rest ->
                  model := List.rev rest;
                  got = Some x)
          | _ -> (
              let got = Sim.Deque.steal d in
              match !model with
              | [] -> got = None
              | x :: rest ->
                  model := rest;
                  got = Some x))
        ops)

(* ----------------------------- engine ----------------------------- *)

let engine_virtual_time_order () =
  let e = Sim.Engine.create ~num_workers:2 () in
  let log = ref [] in
  Sim.Engine.run e (fun w ->
      if w = 0 then begin
        Sim.Engine.advance e 10;
        log := (0, Sim.Engine.now e) :: !log;
        Sim.Engine.advance e 100;
        log := (0, Sim.Engine.now e) :: !log
      end
      else begin
        Sim.Engine.advance e 50;
        log := (1, Sim.Engine.now e) :: !log
      end);
  let times = List.rev_map snd !log in
  Alcotest.(check (list int)) "events in time order" [ 10; 50; 110 ] times

let engine_park_unpark () =
  let e = Sim.Engine.create ~num_workers:2 () in
  let woke_at = ref (-1) in
  Sim.Engine.run e (fun w ->
      if w = 0 then begin
        Sim.Engine.advance e 500;
        Sim.Engine.unpark e 1
      end
      else begin
        Sim.Engine.park e;
        woke_at := Sim.Engine.now e
      end);
  check_int "woken at waker's time" 500 !woke_at

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let engine_deadlock_detected () =
  (* The message now carries a per-worker snapshot (clock, park state, plus
     any diagnostics the executor registers); pin its pieces rather than the
     exact string. *)
  let e = Sim.Engine.create ~num_workers:1 () in
  Sim.Engine.set_diagnostics e (fun w -> Printf.sprintf " extra=%d" w);
  let msg =
    try
      Sim.Engine.run e (fun _ -> Sim.Engine.park e);
      Alcotest.fail "expected Deadlock"
    with Sim.Engine.Deadlock m -> m
  in
  let has sub = Alcotest.(check bool) (Printf.sprintf "mentions %S" sub) true (contains ~sub msg) in
  has "live workers parked and event queue empty";
  has "worker 0: clock=0";
  has "parked";
  has "extra=0"

let engine_callbacks_and_cancel () =
  let e = Sim.Engine.create ~num_workers:1 () in
  let fired = ref 0 in
  let cancel = Sim.Engine.every e ~start:10 ~interval:10 (fun () -> incr fired) in
  Sim.Engine.run e (fun _ ->
      Sim.Engine.advance e 35;
      cancel ();
      Sim.Engine.advance e 100);
  check_int "beats before cancel only" 3 !fired

let engine_determinism () =
  let run () =
    let e = Sim.Engine.create ~seed:5 ~num_workers:4 () in
    let trace = Buffer.create 64 in
    Sim.Engine.run e (fun w ->
        for _ = 1 to 3 do
          Sim.Engine.advance e ((w * 7) + 3);
          Buffer.add_string trace (Printf.sprintf "%d@%d;" w (Sim.Engine.now e))
        done);
    Buffer.contents trace
  in
  Alcotest.(check string) "identical traces" (run ()) (run ())

let engine_max_time () =
  let e = Sim.Engine.create ~num_workers:3 () in
  Sim.Engine.run e (fun w -> Sim.Engine.advance e (100 * (w + 1)));
  check_int "makespan" 300 (Sim.Engine.max_time e)

(* ----------------------------- membus ----------------------------- *)

let membus_no_stall_under_capacity () =
  let b = Sim.Membus.create ~bytes_per_cycle:10.0 in
  (* 100 bytes over 100 compute cycles: demand 1 B/cy << 10. *)
  check_int "compute-bound" 100 (Sim.Membus.serve b ~now:0 ~compute:100 ~bytes:100)

let membus_caps_throughput () =
  let b = Sim.Membus.create ~bytes_per_cycle:10.0 in
  (* Two requesters at the same instant, each 1000 bytes, no compute:
     the second finishes only after both transfers. *)
  let t1 = Sim.Membus.serve b ~now:0 ~compute:0 ~bytes:1000 in
  let t2 = Sim.Membus.serve b ~now:0 ~compute:0 ~bytes:1000 in
  check_int "first: own transfer" 100 t1;
  check_int "second: queued behind" 200 t2

let membus_idle_resets () =
  let b = Sim.Membus.create ~bytes_per_cycle:10.0 in
  ignore (Sim.Membus.serve b ~now:0 ~compute:0 ~bytes:1000);
  (* Much later, the bus is idle again. *)
  check_int "no residual backlog" 10 (Sim.Membus.serve b ~now:10_000 ~compute:0 ~bytes:100)

let membus_zero_bytes () =
  let b = Sim.Membus.create ~bytes_per_cycle:1.0 in
  check_int "pure compute" 42 (Sim.Membus.serve b ~now:0 ~compute:42 ~bytes:0)

(* ----------------------------- metrics ---------------------------- *)

let metrics_overhead_attribution () =
  let m = Sim.Metrics.create () in
  Sim.Metrics.add_overhead m "poll" 50;
  Sim.Metrics.add_overhead m "poll" 25;
  Sim.Metrics.add_overhead m "steal" 10;
  check_int "per kind" 75 (Sim.Metrics.overhead_of m "poll");
  check_int "total" 85 m.Sim.Metrics.overhead_cycles

let metrics_promotion_shares () =
  let m = Sim.Metrics.create () in
  Sim.Metrics.promotion_at_level m 0;
  Sim.Metrics.promotion_at_level m 0;
  Sim.Metrics.promotion_at_level m 1;
  Sim.Metrics.promotion_at_level m 99 (* clamped into the last bucket *);
  let shares = Sim.Metrics.promotion_share_by_level m in
  Alcotest.(check (float 0.001)) "level 0" 50.0 shares.(0);
  Alcotest.(check (float 0.001)) "level 1" 25.0 shares.(1)

let metrics_detection_rate () =
  let m = Sim.Metrics.create () in
  m.Sim.Metrics.heartbeats_generated <- 200;
  m.Sim.Metrics.heartbeats_detected <- 150;
  Alcotest.(check (float 0.001)) "rate" 75.0 (Sim.Metrics.detection_rate m)

let engine_schedule_at_order () =
  let e = Sim.Engine.create ~num_workers:1 () in
  let log = ref [] in
  Sim.Engine.schedule_at e ~time:50 (fun () -> log := "b" :: !log);
  Sim.Engine.schedule_at e ~time:50 (fun () -> log := "c" :: !log);
  Sim.Engine.schedule_at e ~time:10 (fun () -> log := "a" :: !log);
  Sim.Engine.run e (fun _ -> Sim.Engine.advance e 100);
  (* time order first, then FIFO among ties *)
  Alcotest.(check (list string)) "ordering" [ "a"; "b"; "c" ] (List.rev !log)

let engine_unpark_not_parked_is_noop () =
  let e = Sim.Engine.create ~num_workers:2 () in
  Sim.Engine.run e (fun w ->
      if w = 0 then begin
        (* worker 1 is not parked yet; this must be a harmless no-op *)
        Sim.Engine.unpark e 1;
        Sim.Engine.advance e 10;
        Sim.Engine.unpark_all e
      end
      else begin
        Sim.Engine.advance e 5;
        Sim.Engine.park e
      end);
  check_int "worker 1 resumed at waker's clock" 10 (Sim.Engine.clock_of e 1)

(* --------------------------- cost model ---------------------------- *)

let cost_model_conversions () =
  let cm = Sim.Cost_model.default in
  Alcotest.(check int) "us -> cycles" 300_000 (Sim.Cost_model.cycles_of_us cm 100.0);
  Alcotest.(check (float 1e-9)) "cycles -> us" 100.0 (Sim.Cost_model.us_of_cycles cm 300_000);
  Alcotest.(check (float 1e-12)) "cycles -> s" 1e-4 (Sim.Cost_model.seconds_of_cycles cm 300_000)

let cost_model_presets () =
  let p = Sim.Cost_model.paper and d = Sim.Cost_model.default in
  check_int "paper heartbeat = 100us at 3GHz" 300_000 p.Sim.Cost_model.heartbeat_interval;
  check_int "paper interrupt cost" 3_800 p.Sim.Cost_model.interrupt_delivery_cost;
  check_int "paper poll cost" 50 p.Sim.Cost_model.poll_cost;
  check_int "scaled heartbeat = paper / 10" (p.Sim.Cost_model.heartbeat_interval / 10)
    d.Sim.Cost_model.heartbeat_interval;
  check_int "poll cost is physical (unscaled)" p.Sim.Cost_model.poll_cost d.Sim.Cost_model.poll_cost;
  (* the ping thread's team-signalling time keeps the paper's ~55% of the
     heartbeat period *)
  check_bool "ping stretch ratio preserved" true
    (let ratio cm =
       Float.of_int (64 * cm.Sim.Cost_model.signal_send_cost)
       /. Float.of_int cm.Sim.Cost_model.heartbeat_interval
     in
     ratio d > 0.5 && ratio d < 2.5)

let qt = QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "rng: deterministic per seed" `Quick rng_deterministic;
    Alcotest.test_case "rng: int bounds" `Quick rng_int_bounds;
    Alcotest.test_case "rng: float bounds" `Quick rng_float_bounds;
    Alcotest.test_case "rng: uniform mean" `Quick rng_int_mean;
    Alcotest.test_case "rng: split independence" `Quick rng_split_independent;
    qt rng_zipf_bounds;
    Alcotest.test_case "rng: zipf is skewed" `Quick rng_zipf_skew;
    Alcotest.test_case "deque: owner LIFO" `Quick deque_lifo_owner;
    Alcotest.test_case "deque: thief FIFO" `Quick deque_fifo_thief;
    Alcotest.test_case "deque: growth preserves order" `Quick deque_growth;
    qt deque_model;
    Alcotest.test_case "engine: virtual-time ordering" `Quick engine_virtual_time_order;
    Alcotest.test_case "engine: park/unpark" `Quick engine_park_unpark;
    Alcotest.test_case "engine: deadlock detection" `Quick engine_deadlock_detected;
    Alcotest.test_case "engine: recurring callback + cancel" `Quick engine_callbacks_and_cancel;
    Alcotest.test_case "engine: deterministic" `Quick engine_determinism;
    Alcotest.test_case "engine: max_time" `Quick engine_max_time;
    Alcotest.test_case "membus: under capacity" `Quick membus_no_stall_under_capacity;
    Alcotest.test_case "membus: caps throughput" `Quick membus_caps_throughput;
    Alcotest.test_case "membus: idles" `Quick membus_idle_resets;
    Alcotest.test_case "membus: zero bytes" `Quick membus_zero_bytes;
    Alcotest.test_case "metrics: attribution" `Quick metrics_overhead_attribution;
    Alcotest.test_case "metrics: promotion shares" `Quick metrics_promotion_shares;
    Alcotest.test_case "metrics: detection rate" `Quick metrics_detection_rate;
    Alcotest.test_case "cost model: conversions" `Quick cost_model_conversions;
    Alcotest.test_case "cost model: presets" `Quick cost_model_presets;
    Alcotest.test_case "engine: schedule_at ordering" `Quick engine_schedule_at_order;
    Alcotest.test_case "engine: unpark no-op" `Quick engine_unpark_not_parked_is_noop;
  ]
